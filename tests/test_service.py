"""The simulation service: transport, alerting, supervision, and the CLI.

Four layers of coverage, cheapest first:

* **transport** — the JSONL pipe contract: every event type of the taxonomy
  round-trips through its payload line, the incremental decoder survives
  arbitrary chunk splits, truncated final lines and malformed garbage, and
  the OS pipe provides back-pressure (a slow consumer throttles the producer
  instead of losing events);
* **alerts** — tier thresholds, per-position cooldowns, escalation, and
  rapid-deterioration detection, all keyed on simulated blocks (no sleeping);
* **store equivalence** — the acceptance bar: for every registered scenario,
  a worker-subprocess execution produces bit-identical store artifacts to a
  plain in-process :func:`~repro.campaigns.executor.execute_job`;
* **supervision** — the asyncio supervisor end to end: concurrent jobs,
  the HTTP surface, journal resume, and ``repro serve`` / ``repro watch``
  under SIGTERM as real subprocesses.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import scenarios
from repro.analytics.records import LiquidationRecord
from repro.campaigns.executor import RunJob, execute_job
from repro.campaigns.spec import RunSpec
from repro.campaigns.store import RunStore
from repro.observers.events import (
    AuctionDealt,
    BlockMined,
    IncidentFired,
    InterestAccrued,
    LiquidationSettled,
    PriceUpdated,
    RunCompleted,
    RunStarted,
    SimEvent,
    SnapshotTaken,
    StepStarted,
)
from repro.observers.sinks import JsonlSink
from repro.service import (
    AlertEngine,
    AlertPolicy,
    EventStreamDecoder,
    ServiceConfig,
    ServiceJournal,
    ServiceSupervisor,
    decode_line,
    expand_job,
)
from repro.service.jobs import SubmissionError
from repro.service.transport import EVENT_TYPES
from repro.service.worker import job_from_payload, job_payload
from repro.telemetry.http import MetricsServer

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: Block strides for the truncated equivalence/service runs (fast but still
#: crossing incidents, accrual and liquidations on every scenario).
STRIDES = 20
SEED = 13


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else SRC_DIR
    )
    return env


def truncated_end_block(name: str) -> int:
    config = scenarios.get(name).builder(None).config
    return min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)


# --------------------------------------------------------------------- #
# Transport: round-trip fidelity
# --------------------------------------------------------------------- #

SAMPLE_RECORD = LiquidationRecord(
    platform="Compound",
    mechanism="fixed-spread",
    block_number=9_704_800,
    month="2020-03",
    liquidator="0x00000000000000000000000000000000000000aa",
    borrower="0x00000000000000000000000000000000000000bb",
    debt_symbol="DAI",
    collateral_symbol="ETH",
    repaid_usd=500.0,
    collateral_usd=550.0,
    profit_usd=50.0,
    used_flash_loan=True,
    auction_id=None,
)

#: One instance of every concrete event type in the taxonomy.
SAMPLE_EVENTS: list[SimEvent] = [
    RunStarted(step_index=0, block_number=9_700_000, n_steps=100, end_block=9_780_000),
    StepStarted(step_index=1, block_number=9_700_800),
    IncidentFired(step_index=2, block_number=9_701_600, name="march-crash", scheduled_block=9_701_600),
    PriceUpdated(step_index=2, block_number=9_701_600, oracle="oracle", symbol="ETH", price=132.5),
    InterestAccrued(step_index=3, block_number=9_702_400, protocols=("Aave", "Compound")),
    SnapshotTaken(step_index=4, block_number=9_703_200),
    AuctionDealt(
        step_index=5,
        block_number=9_704_000,
        auction_id=7,
        borrower="0xb0",
        winner=None,
        collateral_symbol="ETH",
        debt_repaid=1_000.0,
        collateral_won=7.5,
    ),
    LiquidationSettled(step_index=6, block_number=9_704_800, record=SAMPLE_RECORD),
    BlockMined(step_index=7, block_number=9_705_600, n_receipts=3, gas_used=21_000, base_gas_price_wei=10**9),
    RunCompleted(step_index=8, block_number=9_706_400, final_block=9_706_399),
]


def test_sample_events_cover_the_whole_taxonomy():
    # Drift guard: extending the taxonomy must extend this suite's samples.
    assert {type(event).__name__ for event in SAMPLE_EVENTS} == set(EVENT_TYPES)


@pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda event: type(event).__name__)
def test_every_event_type_roundtrips(event):
    line = json.dumps(event.payload(), sort_keys=True)
    decoded = decode_line(line)
    assert type(decoded) is type(event)
    assert decoded == event


def test_service_messages_pass_through_as_dicts():
    message = {"service": "hf_sample", "platform": "Aave", "health_factor": 1.01}
    assert decode_line(json.dumps(message)) == message


def test_decoder_handles_arbitrary_chunk_splits():
    stream = "".join(json.dumps(event.payload(), sort_keys=True) + "\n" for event in SAMPLE_EVENTS)
    for chunk_size in (1, 7, 64, len(stream)):
        decoder = EventStreamDecoder()
        decoded = []
        for start in range(0, len(stream), chunk_size):
            decoded.extend(decoder.feed(stream[start : start + chunk_size]))
        decoded.extend(decoder.flush())
        assert decoded == SAMPLE_EVENTS
        assert decoder.events_decoded == len(SAMPLE_EVENTS)
        assert decoder.lines_dropped == 0


def test_decoder_recovers_from_truncated_final_line():
    decoder = EventStreamDecoder()
    complete = json.dumps(SAMPLE_EVENTS[0].payload(), sort_keys=True) + "\n"
    truncated = json.dumps(SAMPLE_EVENTS[1].payload(), sort_keys=True)[:25]  # killed mid-write
    decoded = list(decoder.feed(complete + truncated))
    decoded.extend(decoder.flush())
    assert decoded == [SAMPLE_EVENTS[0]]
    assert decoder.lines_dropped == 1
    assert decoder.last_dropped == truncated


def test_decoder_unterminated_but_complete_tail_still_decodes():
    # Producer exited between write() and the trailing newline.
    decoder = EventStreamDecoder()
    assert list(decoder.feed(json.dumps(SAMPLE_EVENTS[0].payload(), sort_keys=True))) == []
    assert list(decoder.flush()) == [SAMPLE_EVENTS[0]]
    assert decoder.lines_dropped == 0


def test_decoder_drops_malformed_lines_and_continues():
    decoder = EventStreamDecoder()
    good = json.dumps(SAMPLE_EVENTS[3].payload(), sort_keys=True)
    lines = [
        "{not json at all",
        '["a", "json", "array"]',
        json.dumps({"event": "NoSuchEvent", "step_index": 0, "block_number": 1}),
        json.dumps({"event": "PriceUpdated", "step_index": 0}),  # missing fields
        good,
        "",
    ]
    decoded = list(decoder.feed("\n".join(lines) + "\n"))
    assert decoded == [SAMPLE_EVENTS[3]]
    assert decoder.lines_dropped == 4
    assert decoder.events_decoded == 1


def test_pipe_backpressure_throttles_producer_without_losing_events():
    """A slow consumer stalls the writer on the full pipe; no event is lost."""
    read_fd, write_fd = os.pipe()
    try:  # shrink the kernel buffer so the writer blocks early
        import fcntl

        fcntl.fcntl(write_fd, fcntl.F_SETPIPE_SZ, 4096)
    except (ImportError, AttributeError, OSError):  # pragma: no cover - non-Linux
        pass

    total = 2_000  # ~240 KB of lines, far beyond any pipe buffer
    writer_done = threading.Event()

    def produce() -> None:
        with os.fdopen(write_fd, "w", encoding="utf-8") as handle:
            sink = JsonlSink(handle)
            for index in range(total):
                sink.on_event(
                    PriceUpdated(
                        step_index=index, block_number=9_700_000 + index, oracle="o", symbol="ETH", price=float(index)
                    )
                )
            sink.finalize()
        writer_done.set()

    producer = threading.Thread(target=produce, daemon=True)
    producer.start()
    time.sleep(0.3)
    # The pipe is full and unread: the producer must be blocked in write().
    assert not writer_done.is_set(), "producer finished against an undrained pipe"

    decoder = EventStreamDecoder()
    decoded = 0
    with os.fdopen(read_fd, "r", encoding="utf-8") as reader:
        while True:
            chunk = reader.read(8192)
            if not chunk:
                break
            decoded += sum(1 for _ in decoder.feed(chunk))
    decoded += sum(1 for _ in decoder.flush())
    producer.join(timeout=10)
    assert writer_done.is_set()
    assert decoded == total
    assert decoder.lines_dropped == 0


def test_worker_payload_roundtrip():
    job = RunJob(
        store_root="/tmp/store",
        campaign="camp",
        run=RunSpec(scenario="small", overrides=(("end_block", 9_716_000),), seed=13, seed_index=2, variant="cf0.5"),
        experiments=("table1", "fig4"),
        collect_telemetry=False,
    )
    rebuilt = job_from_payload(json.loads(json.dumps(job_payload(job))))
    assert rebuilt == job


# --------------------------------------------------------------------- #
# Alert engine
# --------------------------------------------------------------------- #


def sample(engine: AlertEngine, *, hf: float, block: int, owner: str = "0xa", platform: str = "Aave"):
    return engine.observe(
        job_id="job-0001",
        run_id="base-seed000",
        platform=platform,
        owner=owner,
        health_factor=hf,
        debt_usd=1_000.0,
        block_number=block,
    )


def test_alert_tiers_by_threshold():
    engine = AlertEngine(AlertPolicy(warning_hf=1.05, critical_hf=1.0))
    assert sample(engine, hf=1.2, block=100) == []
    (warning,) = sample(engine, hf=1.04, block=200, owner="0xw")
    assert (warning.tier, warning.reason) == ("warning", "threshold")
    (critical,) = sample(engine, hf=0.98, block=300, owner="0xc")
    assert (critical.tier, critical.reason) == ("critical", "threshold")
    assert engine.counts == {"warning": 1, "critical": 1}


def test_alert_cooldown_suppresses_then_reraises():
    engine = AlertEngine(AlertPolicy(cooldown_blocks=1_000, deterioration_drop=10.0))
    assert len(sample(engine, hf=1.04, block=100)) == 1
    assert sample(engine, hf=1.03, block=600) == []  # within cooldown
    assert len(sample(engine, hf=1.03, block=1_200)) == 1  # cooldown expired
    assert engine.counts["warning"] == 2


def test_alert_escalation_not_suppressed_by_warning_cooldown():
    engine = AlertEngine(AlertPolicy(cooldown_blocks=10_000, deterioration_drop=10.0))
    assert sample(engine, hf=1.04, block=100)[0].tier == "warning"
    (critical,) = sample(engine, hf=0.99, block=200)  # warning still cooling down
    assert critical.tier == "critical"


def test_alert_cooldowns_are_per_position():
    engine = AlertEngine(AlertPolicy(cooldown_blocks=10_000, deterioration_drop=10.0))
    assert len(sample(engine, hf=1.04, block=100, owner="0xa")) == 1
    assert len(sample(engine, hf=1.04, block=100, owner="0xb")) == 1
    assert len(sample(engine, hf=1.04, block=100, owner="0xa", platform="Compound")) == 1


def test_rapid_deterioration_alerts_above_the_thresholds():
    engine = AlertEngine(AlertPolicy(deterioration_window_blocks=2_400, deterioration_drop=0.05))
    assert sample(engine, hf=1.30, block=100) == []
    (alert,) = sample(engine, hf=1.20, block=1_000)  # -0.10 within the window
    assert (alert.tier, alert.reason) == ("warning", "rapid-deterioration")
    assert alert.previous_health_factor == 1.30


def test_rapid_deterioration_escalates_one_tier():
    engine = AlertEngine(AlertPolicy(deterioration_window_blocks=2_400, deterioration_drop=0.05))
    assert sample(engine, hf=1.10, block=100) == []
    (alert,) = sample(engine, hf=1.02, block=1_000)  # warning level, falling fast
    assert (alert.tier, alert.reason) == ("critical", "rapid-deterioration")


def test_slow_drift_is_not_rapid_deterioration():
    engine = AlertEngine(AlertPolicy(deterioration_window_blocks=2_400, deterioration_drop=0.05))
    assert sample(engine, hf=1.30, block=100) == []
    assert sample(engine, hf=1.20, block=50_000) == []  # same drop, far outside the window


def test_alert_policy_validation():
    with pytest.raises(ValueError, match="critical_hf"):
        AlertPolicy(warning_hf=1.0, critical_hf=1.05)
    with pytest.raises(ValueError, match=">= 0"):
        AlertPolicy(cooldown_blocks=-1)


def test_clear_run_resets_position_state():
    engine = AlertEngine(AlertPolicy(cooldown_blocks=10_000, deterioration_drop=10.0))
    assert len(sample(engine, hf=1.04, block=100)) == 1
    engine.clear_run("job-0001", "base-seed000")
    assert len(sample(engine, hf=1.04, block=200)) == 1  # cooldown was dropped


def test_alert_payload_keeps_exact_counts_with_bounded_log():
    engine = AlertEngine(AlertPolicy(cooldown_blocks=0, deterioration_drop=10.0, max_alerts=5))
    for index in range(12):
        sample(engine, hf=1.01, block=index * 10)
    body = engine.payload(limit=3)
    assert body["counts"]["warning"] == 12
    assert len(body["alerts"]) == 3
    assert body["samples_seen"] == 12
    assert body["policy"]["max_alerts"] == 5


# --------------------------------------------------------------------- #
# Job expansion
# --------------------------------------------------------------------- #


def test_expand_run_job_defaults():
    record = expand_job("job-0001", {"kind": "run", "scenario": "small"})
    assert record.kind == "run"
    assert record.campaign == "small"
    assert list(record.runs) == ["base-seed000"]
    spec = record.runs["base-seed000"].spec
    assert spec.seed == scenarios.get("small").builder(None).config.seed
    assert record.experiments  # defaults to every experiment


def test_expand_sweep_job_matches_campaign_semantics():
    payload = {
        "kind": "sweep",
        "scenario": "small",
        "seeds": 3,
        "base_seed": 11,
        "grid": {"close_factor": [0.5, 1.0]},
        "experiments": ["table1"],
        "campaign": "cf-sweep",
    }
    record = expand_job("job-0002", payload)
    assert record.campaign == "cf-sweep"
    assert len(record.runs) == 6  # 2 variants x 3 seeds
    assert all(state.status == "queued" for state in record.runs.values())


@pytest.mark.parametrize(
    "payload, match",
    [
        ({"kind": "run"}, "scenario"),
        ({"kind": "run", "scenario": "no-such-scenario"}, "no-such-scenario"),
        ({"kind": "run", "scenario": "small", "experiments": ["bogus"]}, "bogus"),
        ({"kind": "run", "scenario": "small", "overrides": {"bogus": 1}}, "bogus"),
        ({"kind": "teleport", "scenario": "small"}, "teleport"),
        ("not an object", "object"),
    ],
)
def test_expand_job_rejects_malformed_payloads(payload, match):
    with pytest.raises(SubmissionError, match=match):
        expand_job("job-0001", payload)


# --------------------------------------------------------------------- #
# Store equivalence: service worker vs in-process executor
# --------------------------------------------------------------------- #


def canonical_manifest(manifest: dict) -> dict:
    """The manifest minus its timing-dependent keys (all that may differ)."""
    cleaned = dict(manifest)
    cleaned.pop("elapsed_seconds", None)
    cleaned.pop("telemetry", None)
    return cleaned


@pytest.mark.parametrize("name", scenarios.names())
def test_service_worker_store_artifacts_are_bit_identical(name, tmp_path):
    """The acceptance bar: for every registered scenario, a run executed by
    the service worker subprocess leaves byte-identical experiment files and
    an equal manifest (modulo timings) to a plain in-process execution."""
    spec = RunSpec(
        scenario=name,
        overrides=(("end_block", truncated_end_block(name)),),
        seed=SEED,
        seed_index=0,
        variant="base",
    )
    experiments = ("table1",)

    direct = execute_job(
        RunJob(store_root=str(tmp_path / "direct"), campaign=name, run=spec, experiments=experiments)
    )
    assert direct.error is None

    service_job = RunJob(
        store_root=str(tmp_path / "service"), campaign=name, run=spec, experiments=experiments
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro.service.worker", json.dumps(job_payload(service_job))],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr

    # The stream itself must be clean: typed events plus service messages,
    # nothing dropped, and a successful job_result as the final message.
    decoder = EventStreamDecoder()
    messages = list(decoder.feed(completed.stdout)) + list(decoder.flush())
    assert decoder.lines_dropped == 0
    assert decoder.events_decoded > 0
    result = messages[-1]
    assert isinstance(result, dict) and result["service"] == "job_result"
    assert result["error"] is None and not result["interrupted"]

    direct_store, service_store = RunStore(tmp_path / "direct"), RunStore(tmp_path / "service")
    for experiment_id in experiments:
        direct_bytes = direct_store.experiment_path(name, spec.run_id, experiment_id).read_bytes()
        service_bytes = service_store.experiment_path(name, spec.run_id, experiment_id).read_bytes()
        assert direct_bytes == service_bytes
    direct_manifest = direct_store.read_manifest(name, spec.run_id)
    service_manifest = service_store.read_manifest(name, spec.run_id)
    assert canonical_manifest(direct_manifest) == canonical_manifest(service_manifest)
    # The metrics block (streamed aggregates) is part of the equivalence.
    assert direct_manifest["metrics"] == service_manifest["metrics"]


# --------------------------------------------------------------------- #
# Supervisor: concurrency, metrics, resume
# --------------------------------------------------------------------- #


def small_sweep_payload(seeds: int = 8) -> dict:
    return {
        "kind": "sweep",
        "scenario": "small",
        "seeds": seeds,
        "overrides": {"end_block": truncated_end_block("small")},
        "experiments": ["table1"],
        "campaign": "svc",
    }


def serve_until_idle(supervisor: ServiceSupervisor, **kwargs):
    return asyncio.run(
        supervisor.serve(exit_when_idle=True, install_signals=False, **kwargs)
    )


def test_supervisor_runs_concurrent_jobs_and_aggregates_state(tmp_path):
    supervisor = ServiceSupervisor(ServiceConfig(store_root=str(tmp_path), workers=4))
    supervisor.submit(small_sweep_payload(seeds=6))
    supervisor.submit(
        {
            "kind": "run",
            "scenario": "small",
            "seed": 99,
            "overrides": {"end_block": truncated_end_block("small")},
            "experiments": ["table1"],
            "campaign": "svc-single",
        }
    )
    summary = serve_until_idle(supervisor)

    assert summary.completed_runs == 7
    assert summary.failed_runs == 0
    # >= 4 jobs genuinely in flight at once (the ISSUE's concurrency bar).
    assert supervisor.peak_active_runs >= 4

    store = RunStore(tmp_path)
    assert len(store.run_ids("svc")) == 6
    assert store.run_ids("svc-single") == ["base-seed000"]

    status, listing = supervisor.jobs_route("")
    assert status == 200
    assert [job["state"] for job in listing["jobs"]] == ["completed", "completed"]
    status, detail = supervisor.jobs_route("job-0001")
    assert status == 200
    assert all(run["status"] == "completed" for run in detail["run_states"])
    assert all(run["blocks"] == STRIDES + 1 for run in detail["run_states"])
    assert all(run["events"] > 0 for run in detail["run_states"])

    exposition = supervisor.registry.exposition()
    assert 'repro_service_runs_total{status="completed"} 7' in exposition
    assert "repro_service_peak_active_runs 4" in exposition
    assert 'repro_service_events_total{kind="BlockMined"}' in exposition
    assert supervisor.alerts.samples_seen > 0

    # The journal reached its terminal form: nothing to resume.
    assert ServiceJournal(tmp_path).incomplete_jobs() == []


def test_supervisor_resumes_completed_runs_from_the_store(tmp_path):
    first = ServiceSupervisor(ServiceConfig(store_root=str(tmp_path), workers=2))
    first.submit(small_sweep_payload(seeds=2))
    assert serve_until_idle(first).completed_runs == 2

    again = ServiceSupervisor(ServiceConfig(store_root=str(tmp_path), workers=2))
    again.submit(small_sweep_payload(seeds=2))
    summary = serve_until_idle(again)
    assert summary.resumed_runs == 2
    assert summary.completed_runs == 0
    assert again.peak_active_runs == 0  # no subprocess was ever needed


def test_supervisor_resumes_incomplete_jobs_from_the_journal(tmp_path):
    # A journal left behind by a service that died before executing anything.
    record = expand_job("job-0007", small_sweep_payload(seeds=2))
    ServiceJournal(tmp_path).save(8, [record])

    supervisor = ServiceSupervisor(ServiceConfig(store_root=str(tmp_path), workers=2))
    summary = serve_until_idle(supervisor)
    assert summary.completed_runs == 2
    status, listing = supervisor.jobs_route("")
    assert [job["job_id"] for job in listing["jobs"]] == ["job-0007"]
    assert listing["jobs"][0]["state"] == "completed"
    # Fresh submissions continue the journalled numbering.
    assert supervisor.submit(small_sweep_payload(seeds=1))["job_id"] == "job-0008"


def test_failed_runs_are_reported_not_fatal(tmp_path):
    supervisor = ServiceSupervisor(ServiceConfig(store_root=str(tmp_path), workers=1))
    # blocks_per_step=0 builds a config that fails validation inside the worker.
    supervisor.submit(
        {
            "kind": "run",
            "scenario": "small",
            "overrides": {"blocks_per_step": 0},
            "experiments": ["table1"],
        }
    )
    summary = serve_until_idle(supervisor)
    assert summary.failed_runs == 1
    status, detail = supervisor.jobs_route("job-0001")
    (run,) = detail["run_states"]
    assert run["status"] == "failed"
    assert run["error"]


# --------------------------------------------------------------------- #
# HTTP surface
# --------------------------------------------------------------------- #


def http_get(url: str):
    with urllib.request.urlopen(url) as response:
        return response.status, response.headers["Content-Type"], response.read().decode()


def http_post(url: str, body: bytes):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def test_service_http_surface(tmp_path):
    supervisor = ServiceSupervisor(ServiceConfig(store_root=str(tmp_path)))
    server = MetricsServer(
        supervisor.registry,
        port=0,
        json_routes={"/jobs": supervisor.jobs_route, "/alerts": supervisor.alerts_route},
        post_routes={"/jobs": supervisor.submit_route},
    )
    with server:
        base = f"http://127.0.0.1:{server.port}"

        status, body = http_post(base + "/jobs", json.dumps(small_sweep_payload(seeds=2)).encode())
        assert status == 201
        assert body["job_id"] == "job-0001"
        assert body["runs"]["total"] == 2

        status, body = http_post(base + "/jobs", b"{not json")
        assert status == 400 and "JSON" in body["error"]
        status, body = http_post(base + "/jobs", json.dumps({"kind": "run", "scenario": "nope"}).encode())
        assert status == 400 and "nope" in body["error"]

        status, content_type, text = http_get(base + "/jobs")
        assert status == 200
        assert content_type == "application/json; charset=utf-8"
        assert [job["job_id"] for job in json.loads(text)["jobs"]] == ["job-0001"]

        status, content_type, text = http_get(base + "/jobs/job-0001")
        assert json.loads(text)["submission"]["scenario"] == "small"

        status, content_type, text = http_get(base + "/alerts")
        assert json.loads(text)["counts"] == {"warning": 0, "critical": 0}

        status, content_type, text = http_get(base + "/health")
        assert (status, json.loads(text)) == (200, {"status": "ok"})

        status, content_type, text = http_get(base + "/metrics")
        assert content_type.startswith("text/plain")
        assert "charset=utf-8" in content_type
        assert "repro_service_jobs" in text

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/jobs/no-such-job")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read().decode())["error"] == "unknown job 'no-such-job'"

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/bogus")
        assert excinfo.value.code == 404
        assert excinfo.value.headers["Content-Type"] == "application/json; charset=utf-8"
        assert json.loads(excinfo.value.read().decode()) == {"error": "not found", "path": "/bogus"}

        supervisor._draining = True
        status, body = http_post(base + "/jobs", json.dumps(small_sweep_payload(seeds=1)).encode())
        assert status == 503 and "draining" in body["error"]


# --------------------------------------------------------------------- #
# CLI entry points under SIGTERM (real subprocesses)
# --------------------------------------------------------------------- #


def wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


def test_repro_watch_sigterm_is_graceful(tmp_path):
    """Satellite: SIGTERM to `repro watch` flushes the stream and exits 0."""
    jsonl = tmp_path / "events.jsonl"
    config = scenarios.get("small").builder(None).config
    end_block = config.start_block + 2_000 * config.blocks_per_step  # long enough to be mid-run
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "watch", "small",
            "--end-block", str(min(end_block, config.end_block)),
            "--jsonl", str(jsonl),
        ],
        env=subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        wait_for(
            lambda: jsonl.exists() and jsonl.stat().st_size > 0,
            timeout=60,
            message="watch never started streaming",
        )
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr
    assert "watch interrupted" in stdout + stderr
    lines = jsonl.read_text().splitlines()
    assert lines, "interrupted watch lost its streamed events"
    for line in lines:  # flushed stream stays valid JSONL end to end
        json.loads(line)


def serve_command(store: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--store", str(store),
        "--workers", "2",
        "--sweep", "small",
        "--seeds", "4",
        "--set", f"end_block={truncated_end_block('small')}",
        "--report", "table1",
        "--campaign", "svc",
        "--drain-timeout", "0",
        "--exit-when-idle",
    ]


def test_repro_serve_sigterm_drains_and_restart_resumes(tmp_path):
    """SIGTERM mid-sweep: exit 0, store resumable; a restart finishes the job
    without re-simulating the runs that already completed."""
    store = tmp_path / "runs"
    process = subprocess.Popen(
        serve_command(store), env=subprocess_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    campaign_dir = store / "svc"
    try:
        wait_for(
            lambda: len(list(campaign_dir.glob("*/manifest.json"))) >= 1,
            timeout=120,
            message="no run completed before the drain",
        )
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr

    manifests = sorted(campaign_dir.glob("*/manifest.json"))
    assert 1 <= len(manifests) < 4, "drain either lost everything or finished the sweep"
    before = {path: path.stat().st_mtime_ns for path in manifests}
    # The journal still carries the job for the restart to pick up.
    assert ServiceJournal(store).incomplete_jobs()

    completed = subprocess.run(
        serve_command(store), env=subprocess_env(), capture_output=True, text=True, timeout=240
    )
    assert completed.returncode == 0, completed.stderr
    assert len(list(campaign_dir.glob("*/manifest.json"))) == 4
    assert "resumed" in completed.stderr
    for path, mtime in before.items():
        assert path.stat().st_mtime_ns == mtime, f"{path} was rewritten instead of resumed"
    assert ServiceJournal(store).incomplete_jobs() == []
