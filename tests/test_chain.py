"""Unit tests for the chain substrate: blocks, mempool, gas market, events."""

import pytest

from repro.chain.chain import Blockchain, ChainConfig
from repro.chain.events import EventFilter
from repro.chain.gas import GasMarket, GasMarketConfig, moving_average
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction, TransactionReverted, TxKind, TxStatus
from repro.chain.types import GWEI, blocks_to_hours, gwei, hours_to_blocks, make_address

ALICE = make_address("alice")


def make_tx(gas_price_gwei: float, gas_limit: int = 100_000, action=None) -> Transaction:
    return Transaction(sender=ALICE, gas_price=gwei(gas_price_gwei), gas_limit=gas_limit, action=action)


class TestUnits:
    def test_gwei_round_trip(self):
        assert gwei(5.0) == 5 * GWEI

    def test_blocks_to_hours(self):
        assert blocks_to_hours(1_660) == pytest.approx(5.99, rel=1e-2)

    def test_hours_to_blocks_inverse(self):
        assert abs(blocks_to_hours(hours_to_blocks(6.0)) - 6.0) < 0.01


class TestMempool:
    def test_orders_by_gas_price(self):
        pool = Mempool()
        low, high = make_tx(1.0), make_tx(10.0)
        pool.submit(low, current_block=0)
        pool.submit(high, current_block=0)
        selected = pool.select_for_block(1_000_000, current_block=0)
        assert selected[0] is high

    def test_respects_block_gas_limit(self):
        pool = Mempool()
        for price in (5.0, 4.0, 3.0):
            pool.submit(make_tx(price, gas_limit=400_000), current_block=0)
        selected = pool.select_for_block(900_000, current_block=0)
        assert len(selected) == 2

    def test_min_gas_price_excludes_low_bids(self):
        pool = Mempool()
        pool.submit(make_tx(1.0), current_block=0)
        pool.submit(make_tx(100.0), current_block=0)
        selected = pool.select_for_block(1_000_000, current_block=0, min_gas_price=gwei(50.0))
        assert len(selected) == 1
        assert len(pool) == 1  # the low bid stays pending

    def test_expired_transactions_dropped(self):
        pool = Mempool(expiry_blocks=10)
        stale = make_tx(5.0)
        pool.submit(stale, current_block=0)
        selected = pool.select_for_block(1_000_000, current_block=100)
        assert selected == []
        assert stale.status is TxStatus.DROPPED

    def test_clear_drops_everything(self):
        pool = Mempool()
        pool.submit(make_tx(5.0), current_block=0)
        dropped = pool.clear()
        assert len(dropped) == 1
        assert len(pool) == 0

    def test_full_pool_evicts_lowest_bidder(self):
        pool = Mempool(max_pending=3)
        lowest = make_tx(1.0)
        keepers = [make_tx(price) for price in (5.0, 4.0, 3.0)]
        pool.submit(lowest, current_block=0)
        for tx in keepers:
            pool.submit(tx, current_block=0)
        assert len(pool) == 3
        assert lowest.status is TxStatus.DROPPED
        assert lowest not in pool.pending
        selected = pool.select_for_block(1_000_000, current_block=0)
        assert [tx.gas_price for tx in selected] == sorted(
            (tx.gas_price for tx in keepers), reverse=True
        )

    def test_eviction_drops_newest_of_tied_lowest(self):
        pool = Mempool(max_pending=2)
        older, newer = make_tx(1.0), make_tx(1.0)
        pool.submit(older, current_block=0)
        pool.submit(newer, current_block=0)
        pool.submit(make_tx(9.0), current_block=0)
        assert newer.status is TxStatus.DROPPED
        assert older.status is TxStatus.PENDING

    def test_eviction_stays_bounded_under_churn(self):
        pool = Mempool(max_pending=50)
        for i in range(1_000):
            pool.submit(make_tx(float(1 + i % 97)), current_block=i // 10)
        assert len(pool) == 50
        assert len(pool.pending) == 50

    def test_expired_low_bids_swept_below_congestion_breakpoint(self):
        """A bid below ``min_gas_price`` is never popped by block packing;
        the sweep must still drop it once its expiry window passes."""
        pool = Mempool(expiry_blocks=10)
        priced_out = make_tx(1.0)
        pool.submit(priced_out, current_block=0)
        # Congested selection never reaches the low bid, so it stays pending.
        pool.select_for_block(1_000_000, current_block=5, min_gas_price=gwei(50.0))
        assert len(pool) == 1
        # Long after expiry, selection sweeps it even though min_gas_price
        # still prevents it from being popped.
        pool.select_for_block(1_000_000, current_block=50, min_gas_price=gwei(50.0))
        assert len(pool) == 0
        assert priced_out.status is TxStatus.DROPPED

    def test_sweep_expired_reports_drop_count(self):
        pool = Mempool(expiry_blocks=10)
        for _ in range(3):
            pool.submit(make_tx(2.0), current_block=0)
        fresh = make_tx(2.0)
        pool.submit(fresh, current_block=95)
        assert pool.sweep_expired(current_block=100) == 3
        assert len(pool) == 1
        assert fresh.status is TxStatus.PENDING


class TestGasMarket:
    def test_congestion_raises_price(self):
        market = GasMarket(GasMarketConfig(initial_gwei=10.0, congestion_multiplier=10.0))
        baseline = market.base_gas_price_gwei
        market.trigger_congestion(5)
        assert market.base_gas_price_gwei == pytest.approx(baseline * 10.0, rel=0.01)
        assert market.is_congested
        assert market.min_inclusion_gas_price_wei > 0

    def test_congestion_expires(self):
        market = GasMarket(GasMarketConfig(initial_gwei=10.0))
        market.trigger_congestion(2)
        market.step()
        market.step()
        assert not market.is_congested
        assert market.min_inclusion_gas_price_wei == 0

    def test_uncongested_level_ignores_multiplier(self):
        market = GasMarket(GasMarketConfig(initial_gwei=10.0, congestion_multiplier=12.0))
        market.trigger_congestion(3)
        assert market.uncongested_gas_price_gwei < market.base_gas_price_gwei

    def test_price_stays_within_clamps(self):
        market = GasMarket(GasMarketConfig(initial_gwei=2.0, min_gwei=1.0, max_gwei=100.0))
        for _ in range(500):
            market.step()
        assert 1.0 <= market.base_gas_price_gwei <= 100.0

    def test_moving_average_smooths(self):
        values = [1.0] * 5 + [11.0] * 5
        averaged = moving_average(values, window=5)
        assert averaged[-1] == pytest.approx(11.0)
        assert averaged[5] < 11.0

    def test_moving_average_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestBlockchain:
    def test_mining_advances_head_and_timestamp(self):
        chain = Blockchain(ChainConfig(inception_block=100, inception_timestamp=1_000, seconds_per_block=13))
        block = chain.mine_block()
        assert block.number == 100
        assert chain.current_block == 101
        assert chain.timestamp_of_block(101) == 1_000 + 13

    def test_block_stride_advances_by_stride(self):
        chain = Blockchain(ChainConfig(inception_block=100, blocks_per_step=50))
        chain.mine_block()
        assert chain.current_block == 150

    def test_transaction_execution_and_receipt(self):
        chain = Blockchain()
        tx = chain.submit_call(ALICE, lambda: 42, gas_price=gwei(5.0), gas_limit=21_000, kind=TxKind.TRANSFER)
        block = chain.mine_block()
        receipt = block.receipts[0]
        assert receipt.result == 42
        assert receipt.succeeded
        assert chain.receipts_by_hash[tx.tx_hash] is receipt

    def test_reverted_transaction_records_error(self):
        chain = Blockchain()

        def failing():
            raise TransactionReverted("nope")

        chain.submit_call(ALICE, failing, gas_price=gwei(5.0), gas_limit=21_000)
        block = chain.mine_block()
        receipt = block.receipts[0]
        assert receipt.status is TxStatus.REVERTED
        assert "nope" in receipt.error

    def test_events_are_filterable(self):
        chain = Blockchain()
        emitter = make_address("contract")
        chain.emit_event("Ping", emitter, {"x": 1})
        chain.emit_event("Pong", emitter, {"x": 2})
        found = chain.get_logs(EventFilter.create(names=["Ping"]))
        assert len(found) == 1
        assert found[0].data["x"] == 1

    def test_event_filter_by_block_range(self):
        chain = Blockchain(ChainConfig(inception_block=10))
        emitter = make_address("contract")
        chain.emit_event("Ping", emitter, {})
        chain.mine_block()
        chain.emit_event("Ping", emitter, {})
        early = chain.get_logs(EventFilter.create(names=["Ping"], to_block=10))
        assert len(early) == 1

    def test_snapshots_capture_registered_providers(self):
        chain = Blockchain()
        state = {"value": 1}
        chain.register_snapshot_provider("demo", lambda: dict(state))
        chain.take_snapshot()
        state["value"] = 2
        chain.take_snapshot()
        first_block = chain.snapshot_blocks[0]
        assert chain.snapshot_at(first_block)["demo"]["value"] in (1, 2)
        block, snapshot = chain.nearest_snapshot(chain.current_block + 10)
        assert snapshot["demo"]["value"] == 2

    def test_nearest_snapshot_requires_history(self):
        chain = Blockchain()
        with pytest.raises(KeyError):
            chain.nearest_snapshot(chain.current_block)

    def test_median_gas_price_of_block(self):
        chain = Blockchain()
        for price in (1.0, 5.0, 9.0):
            chain.submit_call(ALICE, None, gas_price=gwei(price), gas_limit=21_000)
        block = chain.mine_block()
        assert block.median_gas_price == pytest.approx(gwei(5.0))

    def test_execute_directly_bypasses_mempool(self):
        chain = Blockchain()
        receipt = chain.execute_directly(ALICE, lambda: "done")
        assert receipt.result == "done"
        assert len(chain.mempool) == 0

    def test_execute_directly_outside_mining_is_standalone(self):
        chain = Blockchain()
        receipt = chain.execute_directly(ALICE, lambda: "setup")
        block = chain.mine_block()
        assert receipt not in block.receipts
        assert chain.receipts_by_hash[receipt.tx_hash] is receipt

    def test_execute_directly_during_mining_joins_block_receipts(self):
        """A direct execution triggered while a block is being produced must
        land in that block's receipt list, as the docstring promises."""
        chain = Blockchain()
        direct_receipts = []

        def action():
            direct_receipts.append(chain.execute_directly(ALICE, lambda: "mid-block"))
            return "outer"

        chain.submit_call(ALICE, action, gas_price=gwei(5.0), gas_limit=50_000)
        block = chain.mine_block()
        assert len(block.receipts) == 2
        assert block.receipts[0] is direct_receipts[0]
        assert block.receipts[0].result == "mid-block"
        assert block.receipts[1].result == "outer"
        # The in-flight list is released once the block is sealed.
        later = chain.execute_directly(ALICE, lambda: "after")
        assert later not in block.receipts

    def test_direct_execution_does_not_consume_block_gas(self):
        """Direct receipts join the block's receipt list but bypassed
        packing, so they must not inflate gas_used / utilization."""
        chain = Blockchain()

        def action():
            chain.execute_directly(ALICE, lambda: None, gas_limit=400_000)
            return None

        chain.submit_call(ALICE, action, gas_price=gwei(5.0), gas_limit=60_000)
        block = chain.mine_block()
        assert len(block.receipts) == 2
        assert block.gas_used == 60_000
        assert block.utilization <= 1.0

    def test_log_index_resets_every_block(self):
        chain = Blockchain()
        emitter = make_address("contract")
        chain.emit_event("Ping", emitter, {})
        chain.emit_event("Ping", emitter, {})
        chain.mine_block()
        chain.emit_event("Ping", emitter, {})
        chain.mine_block()
        by_block = {}
        for event in chain.events:
            by_block.setdefault(event.block_number, []).append(event.log_index)
        for indices in by_block.values():
            assert indices == list(range(len(indices)))

    def test_log_index_orders_events_within_a_mined_block(self):
        chain = Blockchain()
        emitter = make_address("contract")

        def action():
            chain.emit_event("FromTx", emitter, {})

        chain.emit_event("Setup", emitter, {})
        chain.submit_call(ALICE, action, gas_price=gwei(5.0), gas_limit=50_000)
        block = chain.mine_block()
        in_block = [event for event in chain.events if event.block_number == block.number]
        assert [event.log_index for event in in_block] == [0, 1]
        assert [event.name for event in in_block] == ["Setup", "FromTx"]
