"""Integration tests for the scenario engine and the calibrated small scenario."""

import numpy as np
import pytest

from repro.chain.transaction import TxKind
from repro.simulation.config import ScenarioConfig
from repro.simulation.scenarios import build_price_feed, build_scenario, pre_incident_auction_config, post_incident_auction_config


class TestScenarioConfig:
    def test_step_count_covers_window(self):
        config = ScenarioConfig.small()
        assert config.n_steps * config.blocks_per_step >= config.end_block - config.start_block

    def test_with_overrides_replaces_fields(self):
        config = ScenarioConfig.small().with_overrides(seed=99)
        assert config.seed == 99

    def test_paper_preset_covers_study_window(self):
        config = ScenarioConfig.paper()
        assert config.end_block == 12_344_944
        assert config.start_block < 7_600_000

    def test_auction_configs_scale_with_stride(self):
        pre = pre_incident_auction_config(2_000)
        post = post_incident_auction_config(2_000)
        assert pre.auction_length_blocks >= 2 * 2_000
        assert post.bid_duration_blocks > pre.bid_duration_blocks


class TestPriceFeedScenario:
    def test_feed_covers_window_and_assets(self):
        config = ScenarioConfig.small()
        feed = build_price_feed(config)
        assert feed.end_block >= config.end_block
        for symbol in ("ETH", "WBTC", "DAI", "USDC", "USDT"):
            assert feed.has(symbol)

    def test_march_2020_crash_present_in_eth_path(self):
        config = ScenarioConfig.small()
        feed = build_price_feed(config)
        crash_block = config.incidents.march_2020_block
        before = feed.price("ETH", crash_block - 5 * config.feed_blocks_per_step)
        after = feed.price("ETH", crash_block + 5 * config.feed_blocks_per_step)
        assert after < before * 0.75  # a ≈ 43 % drop, modulo diffusion noise

    def test_stablecoins_remain_near_peg(self):
        config = ScenarioConfig.small()
        feed = build_price_feed(config)
        dai = feed.series["DAI"]
        assert abs(float(np.median(dai)) - 1.0) < 0.05

    def test_same_seed_gives_identical_feed(self):
        config = ScenarioConfig.small(seed=3)
        first = build_price_feed(config)
        second = build_price_feed(config)
        np.testing.assert_allclose(first.series["ETH"], second.series["ETH"])


class TestEngineRun:
    def test_small_run_produces_all_event_families(self, small_result):
        names = small_result.chain.events.names()
        for expected in ("Deposit", "Borrow", "AnswerUpdated", "Bite", "Deal", "FlashLoan"):
            assert expected in names
        liquidation_events = (
            small_result.chain.events.by_name("LiquidationCall")
            + small_result.chain.events.by_name("LiquidateBorrow")
            + small_result.chain.events.by_name("LogLiquidate")
        )
        assert len(liquidation_events) > 10

    def test_run_reaches_end_block(self, small_result):
        assert small_result.final_block >= small_result.config.end_block - small_result.config.blocks_per_step

    def test_scheduled_incidents_fired(self, small_result):
        fired = {event.name for event in small_result.engine.scheduled_events if event.fired}
        assert "march-2020-crash" in fired
        assert "makerdao-auction-reconfiguration" in fired

    def test_snapshots_recorded(self, small_result):
        assert len(small_result.chain.snapshot_blocks) >= 2

    def test_liquidation_receipts_present(self, small_result):
        liquidation_receipts = [
            receipt
            for receipt in small_result.chain.receipts_by_hash.values()
            if receipt.kind is TxKind.LIQUIDATION and receipt.succeeded
        ]
        assert liquidation_receipts

    def test_all_protocols_instantiated(self, small_result):
        names = {protocol.name for protocol in small_result.protocols}
        assert names == {"Aave V1", "Aave V2", "Compound", "dYdX", "MakerDAO"}

    def test_protocol_lookup_by_name(self, small_result):
        assert small_result.protocol("Compound").name == "Compound"
        with pytest.raises(KeyError):
            small_result.protocol("Nonexistent")

    def test_congestion_crowds_out_keeper_bids(self, small_result):
        # During the March 2020 congestion the gas market multiplies its base
        # price; at least one congestion episode must have occurred.
        gas_prices = [block.base_gas_price for block in small_result.chain.blocks]
        assert max(gas_prices) > 5 * float(np.median(gas_prices))

    def test_reproducibility_of_engine_construction(self):
        config = ScenarioConfig.small(seed=21).with_overrides(end_block=9_780_000)
        first = build_scenario(config).run()
        second = build_scenario(config).run()
        assert len(first.chain.events) == len(second.chain.events)
        assert first.chain.events.names() == second.chain.events.names()
