"""Seed-pinned equivalence: vectorized and scalar scans replay identically.

The engine's opportunity scans can run through the columnar
:class:`~repro.core.position_book.PositionBook` (default) or the legacy
per-position sweep (``engine.scan_backend = "scalar"``).  Because the book is
only a conservative prefilter confirmed by the scalar health factor, the two
backends must produce *bit-identical* simulations: same events (names,
blocks, log indices, payloads), same liquidation records, same final block —
for every registered scenario at the same seed.

The windows are truncated (same mechanism as ``repro run --end-block``) so
the whole matrix stays test-suite friendly; each run still crosses scheduled
incidents, accrual, insurance write-offs and auctions.
"""

import pytest

from repro import scenarios
from repro.analytics.records import extract_liquidations
from repro.chain.types import reset_id_counters

#: Number of block strides each truncated equivalence run covers.
STRIDES = 45

SEED = 17


def run_scenario(name: str, backend: str):
    # Addresses and tx hashes come from process-wide counters; reset them so
    # both runs mint identical identifiers (same trick the campaign executor
    # uses for byte-identical store files).
    reset_id_counters()
    builder = scenarios.get(name).builder(seed=SEED)
    config = builder.config
    end_block = min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    engine = builder.build()
    engine.scan_backend = backend
    return engine.run()


def event_fingerprint(result):
    return [
        (event.name, event.emitter.value, event.block_number, event.log_index, event.data)
        for event in result.chain.events
    ]


@pytest.mark.parametrize("name", scenarios.names())
def test_backends_replay_identically(name):
    scalar = run_scenario(name, "scalar")
    vectorized = run_scenario(name, "vectorized")
    assert event_fingerprint(vectorized) == event_fingerprint(scalar)
    assert len(extract_liquidations(vectorized)) == len(extract_liquidations(scalar))
    assert vectorized.final_block == scalar.final_block
    blocks_v = [(b.number, len(b.receipts)) for b in vectorized.chain.blocks]
    blocks_s = [(b.number, len(b.receipts)) for b in scalar.chain.blocks]
    assert blocks_v == blocks_s


def test_unknown_backend_rejected():
    engine = scenarios.get("small").build(seed=SEED)
    engine.scan_backend = "simd"
    with pytest.raises(ValueError, match="unknown scan backend"):
        engine.run(n_steps=1)
