"""Seed-pinned equivalence: book-backed and scalar aggregates replay identically.

Aggregate valuations (protocol totals, archive snapshots, utilization-driven
interest accrual, the dYdX insurance write-off and the analytics sweeps) can
run through the columnar :class:`~repro.core.position_book.BookValuation`
(default) or the legacy per-position walks
(``engine.aggregate_backend = "scalar"``).  The vectorized path resolves the
float-sum-order question with *pinned* reductions — exact per-term products,
scalar fixup of rows with three or more nonzero entries, left-to-right
row-order accumulation — so the two backends must produce **bit-identical**
simulations and reports: same events, same archive snapshots (totals and
per-position health factors included), same liquidation records, same
Table 2 / Table 3 / Figure 8 report JSON — for every registered scenario at
the same seed.
"""

import json

import pytest

from repro import scenarios
from repro.analytics.bad_debt_analysis import bad_debt_table
from repro.analytics.records import extract_liquidations
from repro.analytics.sensitivity_analysis import sensitivity_figure
from repro.analytics.unprofitable_analysis import unprofitable_table
from repro.chain.types import make_address, reset_id_counters
from repro.serialize import to_jsonable

#: Number of block strides each truncated equivalence run covers.
STRIDES = 45

SEED = 29


def run_scenario(name: str, backend: str):
    # Addresses and tx hashes come from process-wide counters; reset them so
    # both runs mint identical identifiers (same trick the campaign executor
    # uses for byte-identical store files).
    reset_id_counters()
    builder = scenarios.get(name).builder(seed=SEED)
    config = builder.config
    end_block = min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    engine = builder.build()
    engine.aggregate_backend = backend
    return engine.run()


def event_fingerprint(result):
    return [
        (event.name, event.emitter.value, event.block_number, event.log_index, event.data)
        for event in result.chain.events
    ]


def snapshot_payload(result) -> str:
    """Every archive snapshot (aggregates + per-position health factors),
    serialized so last-ulp float differences cannot hide."""
    chain = result.chain
    return json.dumps(
        {str(block): to_jsonable(chain.snapshot_at(block)) for block in chain.snapshot_blocks},
        sort_keys=True,
    )


def report_payload(result) -> str:
    """The aggregate-driven report tables (Table 2, Table 3, Figure 8)."""
    return json.dumps(
        to_jsonable(
            {
                "bad_debt": bad_debt_table(result),
                "unprofitable": unprofitable_table(result),
                "sensitivity": sensitivity_figure(result),
            }
        ),
        sort_keys=True,
    )


@pytest.mark.parametrize("name", scenarios.names())
def test_aggregate_backends_replay_identically(name):
    scalar = run_scenario(name, "scalar")
    vectorized = run_scenario(name, "vectorized")
    assert event_fingerprint(vectorized) == event_fingerprint(scalar)
    assert vectorized.final_block == scalar.final_block
    assert snapshot_payload(vectorized) == snapshot_payload(scalar)
    assert report_payload(vectorized) == report_payload(scalar)
    assert len(extract_liquidations(vectorized)) == len(extract_liquidations(scalar))


def test_empty_side_totals_agree_across_backends():
    """A book with positions but no debt must serialize the same total on
    both backends (float 0.0, not the scalar walk's historical int 0)."""
    reset_id_counters()
    engine = scenarios.get("small").build(seed=SEED)
    protocol = engine.protocols[0]
    protocol.position_of(make_address("empty-sider"))  # attached, holds nothing
    engine.aggregate_backend = "vectorized"
    vectorized = protocol.snapshot()
    engine.aggregate_backend = "scalar"
    scalar = protocol.snapshot()
    assert json.dumps(to_jsonable(vectorized), sort_keys=True) == json.dumps(
        to_jsonable(scalar), sort_keys=True
    )


def test_unknown_aggregate_backend_rejected():
    engine = scenarios.get("small").build(seed=SEED)
    engine.aggregate_backend = "simd"
    with pytest.raises(ValueError, match="unknown aggregate backend"):
        engine.run(n_steps=1)


def test_backend_propagates_to_protocols():
    engine = scenarios.get("small").build(seed=SEED)
    assert engine.aggregate_backend == "vectorized"
    engine.aggregate_backend = "scalar"
    assert all(protocol.aggregate_backend == "scalar" for protocol in engine.protocols)
    engine.aggregate_backend = "vectorized"
    assert all(protocol.aggregate_backend == "vectorized" for protocol in engine.protocols)
