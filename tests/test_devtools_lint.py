"""The ``repro lint`` framework: rules fire, pragmas suppress, baselines shrink.

Each rule is exercised against a seeded violation in a synthetic source
tree (so the tests stay hermetic even as the real tree evolves), and the
real tree itself is asserted clean — the committed empty
``lint-baseline.json`` *is* the clean-tree statement, and this test is what
keeps it honest.
"""

import json
from pathlib import Path

import pytest

from repro.devtools import ALL_RULES, load_baseline, run_lint, write_baseline
from repro.devtools.cli import main as lint_main
from repro.devtools.rules import rule_by_code
from repro.devtools.rules.events import event_taxonomy

#: The real src root of this checkout (the directory containing repro/).
SRC_ROOT = Path(__file__).resolve().parents[1] / "src"

#: Minimal taxonomy module for EVT004 tests in synthetic trees.
EVENTS_MODULE = """\
class SimEvent:
    pass

class RunStarted(SimEvent):
    pass

class BlockMined(SimEvent):
    pass

class LiquidationSettled(SimEvent):
    pass
"""


def lint_tree(tmp_path: Path, files: dict) -> "tuple[Path, object]":
    """Write ``files`` (src-root-relative) under ``tmp_path`` and lint them."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path, run_lint(tmp_path, ALL_RULES)


def codes(report) -> list:
    return [violation.code for violation in report.violations]


# --------------------------------------------------------------------- #
# The real tree is clean
# --------------------------------------------------------------------- #
def test_repository_tree_is_clean():
    report = run_lint(SRC_ROOT, ALL_RULES, paths=["repro"])
    assert report.files_checked > 100
    rendered = "\n".join(v.render() for v in report.violations)
    assert not report.violations, f"lint violations in the tree:\n{rendered}"
    assert not report.warnings, "\n".join(report.warnings)


def test_committed_baseline_is_empty_and_loadable():
    baseline = load_baseline(SRC_ROOT.parent / "lint-baseline.json")
    assert baseline.entries == {}


# --------------------------------------------------------------------- #
# DET001 — unseeded randomness / wall clocks
# --------------------------------------------------------------------- #
class TestDeterminismRule:
    def test_flags_stdlib_random_and_wall_clock(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/simulation/bad.py": (
                    "import random\n"
                    "import time\n"
                    "import numpy as np\n"
                    "def step():\n"
                    "    jitter = random.random()\n"
                    "    stamp = time.time()\n"
                    "    draw = np.random.normal()\n"
                )
            },
        )
        assert codes(report).count("DET001") == 3  # import random, time.time, np.random.normal

    def test_seeded_generator_and_alias_resolution(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/agents/good.py": (
                    "import numpy as np\n"
                    "from time import time as now\n"
                    "def make(seed):\n"
                    "    rng = np.random.default_rng(seed)\n"  # allowed constructor
                    "    return rng.normal(), now()\n"  # aliased wall clock still caught
                )
            },
        )
        assert codes(report) == ["DET001"]
        assert "time.time" in report.violations[0].message

    def test_out_of_scope_directory_ignored(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {"repro/analytics/clocky.py": "import time\nstamp = time.time()\n"},
        )
        assert "DET001" not in codes(report)


# --------------------------------------------------------------------- #
# SUM002 — pinned float summation
# --------------------------------------------------------------------- #
class TestSummationRule:
    def test_flags_value_sums_and_pairwise_reductions(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/analytics/bad.py": (
                    "import math\n"
                    "import numpy as np\n"
                    "def totals(records, values):\n"
                    "    a = sum(r.profit_usd for r in records)\n"
                    "    b = np.sum(values)\n"
                    "    c = math.fsum(f.fee_eth for f in records)\n"
                    "    d = values.sum()\n"
                    "    return a, b, c, d\n"
                )
            },
        )
        assert codes(report) == ["SUM002"] * 4

    def test_counting_sums_and_neutral_names_exempt(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/analytics/good.py": (
                    "def shape(records, widths):\n"
                    "    n = sum(1 for r in records if r.profit_usd > 0)\n"
                    "    total_width = sum(widths)\n"
                    "    return n, total_width\n"
                )
            },
        )
        assert "SUM002" not in codes(report)


# --------------------------------------------------------------------- #
# PKL003 — picklable payloads, reset-registered counters
# --------------------------------------------------------------------- #
class TestPicklingRule:
    def test_flags_unregistered_counter_and_pool_lambda(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/campaigns/bad.py": (
                    "import itertools\n"
                    "_ids = itertools.count(1)\n"
                    "def run_all(pool, jobs):\n"
                    "    return pool.imap_unordered(lambda job: job, jobs)\n"
                )
            },
        )
        assert codes(report) == ["PKL003", "PKL003"]
        assert "_ids" in report.violations[0].message
        assert "lambda" in report.violations[1].message

    def test_registered_counter_passes_everywhere(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/chain/ids.py": (
                    "import itertools\n"
                    "from ..runtime_state import register_reset\n"
                    "_ids = itertools.count(1)\n"
                    "def _reset():\n"
                    "    global _ids\n"
                    "    _ids = itertools.count(1)\n"
                    'register_reset("repro.chain.ids", _reset)\n'
                )
            },
        )
        assert "PKL003" not in codes(report)


# --------------------------------------------------------------------- #
# EVT004 — exhaustive event dispatch
# --------------------------------------------------------------------- #
class TestEventDispatchRule:
    def test_taxonomy_parse(self, tmp_path):
        (tmp_path / "repro/observers").mkdir(parents=True)
        (tmp_path / "repro/observers/events.py").write_text(EVENTS_MODULE, encoding="utf-8")
        assert event_taxonomy(tmp_path) == {"RunStarted", "BlockMined", "LiquidationSettled"}

    def test_real_taxonomy_has_the_known_events(self):
        taxonomy = event_taxonomy(SRC_ROOT)
        assert {"LiquidationSettled", "BlockMined", "PriceUpdated"} <= taxonomy

    def test_partial_dispatcher_flagged(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/observers/events.py": EVENTS_MODULE,
                "repro/observers/probe.py": (
                    "from .events import LiquidationSettled\n"
                    "class Probe:\n"
                    "    def on_event(self, event):\n"
                    "        if isinstance(event, LiquidationSettled):\n"
                    "            self.count = 1\n"
                ),
            },
        )
        assert codes(report) == ["EVT004"]
        message = report.violations[0].message
        assert "BlockMined" in message and "RunStarted" in message

    def test_ignored_events_satisfy_the_rule(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/observers/events.py": EVENTS_MODULE,
                "repro/observers/probe.py": (
                    "from .events import BlockMined, LiquidationSettled, RunStarted\n"
                    "class Probe:\n"
                    "    IGNORED_EVENTS = (BlockMined, RunStarted)\n"
                    "    def on_event(self, event):\n"
                    "        if isinstance(event, LiquidationSettled):\n"
                    "            self.count = 1\n"
                ),
            },
        )
        assert "EVT004" not in codes(report)

    def test_stale_ignored_entry_flagged(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/observers/events.py": EVENTS_MODULE,
                "repro/observers/probe.py": (
                    "from .events import BlockMined, LiquidationSettled, RunStarted\n"
                    "class Probe:\n"
                    "    IGNORED_EVENTS = (BlockMined, RunStarted, LiquidationSettled)\n"
                    "    def on_event(self, event):\n"
                    "        if isinstance(event, LiquidationSettled):\n"
                    "            self.count = 1\n"
                ),
            },
        )
        assert codes(report) == ["EVT004"]
        assert "stale" in report.violations[0].message

    def test_uniform_handler_exempt(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/observers/events.py": EVENTS_MODULE,
                "repro/observers/sink.py": (
                    "class Sink:\n"
                    "    def on_event(self, event):\n"
                    "        self.rows.append(event)\n"
                ),
            },
        )
        assert "EVT004" not in codes(report)


# --------------------------------------------------------------------- #
# TEL005 — telemetry facade only
# --------------------------------------------------------------------- #
class TestTelemetryRule:
    def test_flags_ad_hoc_timer_and_private_primitive(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/chain/bad.py": (
                    "import time\n"
                    "from repro.telemetry.spans import Tracer\n"
                    "def mine():\n"
                    "    started = time.perf_counter()\n"
                    "    tracer = Tracer()\n"
                    "    return started, tracer\n"
                )
            },
        )
        assert codes(report) == ["TEL005", "TEL005"]

    def test_facade_and_relative_plumbing_pass(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/chain/good.py": (
                    "from ..telemetry.clock import perf_seconds\n"
                    "from .spans import Tracer\n"
                    "def mine():\n"
                    "    started = perf_seconds()\n"
                    "    tracer = Tracer()\n"  # relative import: telemetry plumbing itself
                    "    return started, tracer\n"
                )
            },
        )
        assert "TEL005" not in codes(report)


# --------------------------------------------------------------------- #
# Framework mechanics: pragmas, syntax errors, sorting
# --------------------------------------------------------------------- #
class TestFramework:
    def test_pragma_suppresses_on_line_and_above(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/simulation/legacy.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    a = time.time()  # repro: lint-ok(DET001 legacy fixture clock)\n"
                    "    # repro: lint-ok(DET001 second legacy fixture clock)\n"
                    "    b = time.time()\n"
                    "    return a, b\n"
                )
            },
        )
        assert "DET001" not in codes(report)
        assert not report.warnings

    def test_unused_and_reasonless_pragmas_warn(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/simulation/stale.py": (
                    "import time\n"
                    "x = 1  # repro: lint-ok(DET001 nothing here violates)\n"
                    "y = time.time()  # repro: lint-ok(DET001)\n"
                )
            },
        )
        assert not report.violations  # the reason-less pragma still suppresses
        assert any("unused pragma" in warning for warning in report.warnings)
        assert any("no reason" in warning for warning in report.warnings)

    def test_pragma_only_suppresses_its_own_code(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/simulation/wrong.py": (
                    "import time\n"
                    "x = time.time()  # repro: lint-ok(SUM002 wrong code entirely)\n"
                )
            },
        )
        assert codes(report) == ["DET001"]
        assert any("unused pragma" in warning for warning in report.warnings)

    def test_syntax_error_becomes_ast000(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {"repro/simulation/broken.py": "def broken(:\n"},
        )
        assert codes(report) == ["AST000"]

    def test_violations_sorted_by_location(self, tmp_path):
        _, report = lint_tree(
            tmp_path,
            {
                "repro/simulation/a.py": "import time\nx = time.time()\n",
                "repro/simulation/b.py": "import random\n",
            },
        )
        paths = [violation.path for violation in report.violations]
        assert paths == sorted(paths)

    def test_every_rule_has_explain_material(self):
        for rule in ALL_RULES:
            assert rule.rationale and rule.example_bad and rule.example_good
            text = rule.explain()
            assert rule.code in text and "lint-ok" in text
        assert rule_by_code("DET001").code == "DET001"
        with pytest.raises(KeyError):
            rule_by_code("NOPE99")


# --------------------------------------------------------------------- #
# Baseline semantics: shrink-only
# --------------------------------------------------------------------- #
class TestBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert baseline.entries == {}

    def test_write_drops_zero_counts(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = write_baseline(path, {"DET001:repro/a.py": 2, "SUM002:repro/b.py": 0})
        assert baseline.entries == {"DET001:repro/a.py": 2}
        assert load_baseline(path).entries == {"DET001:repro/a.py": 2}

    def test_compare_splits_regressions_and_slack(self, tmp_path):
        baseline = write_baseline(
            tmp_path / "baseline.json",
            {"DET001:repro/a.py": 2, "SUM002:repro/b.py": 3},
        )
        regressions, slack = baseline.compare(
            {"DET001:repro/a.py": 4, "SUM002:repro/b.py": 1, "TEL005:repro/c.py": 1}
        )
        assert regressions == {
            "DET001:repro/a.py": (4, 2),  # grew: fail
            "TEL005:repro/c.py": (1, 0),  # new debt: fail
        }
        assert slack == {"SUM002:repro/b.py": 3}  # shrank: stale allowance

    @pytest.mark.parametrize(
        "payload",
        [
            {"version": 99, "entries": {}},
            {"version": 1, "entries": {"DET001:repro/a.py": 0}},
            {"version": 1, "entries": {"DET001:repro/a.py": "two"}},
        ],
    )
    def test_malformed_baseline_rejected(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)


# --------------------------------------------------------------------- #
# The CLI: exit codes and the grandfathering loop
# --------------------------------------------------------------------- #
class TestCli:
    def seed_tree(self, tmp_path: Path) -> Path:
        (tmp_path / "repro/simulation").mkdir(parents=True)
        (tmp_path / "repro/simulation/bad.py").write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        return tmp_path

    def cli(self, tmp_path: Path, *extra: str) -> int:
        return lint_main(
            [
                "--src-root",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "baseline.json"),
                *extra,
            ]
        )

    def test_seeded_violation_fails(self, tmp_path, capsys):
        self.seed_tree(tmp_path)
        assert self.cli(tmp_path) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "FAIL" in out

    def test_clean_tree_passes(self, tmp_path, capsys):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro/ok.py").write_text("x = 1\n", encoding="utf-8")
        assert self.cli(tmp_path) == 0
        assert "ok" in capsys.readouterr().out

    def test_grandfather_then_shrink_loop(self, tmp_path, capsys):
        self.seed_tree(tmp_path)
        assert self.cli(tmp_path, "--write-baseline") == 0
        # Grandfathered: same debt now passes...
        assert self.cli(tmp_path) == 0
        # ...but --no-baseline still reports it as a failure:
        assert self.cli(tmp_path, "--no-baseline") == 1
        capsys.readouterr()
        # Fixing the file leaves a stale allowance: still exit 0, plus a notice.
        (tmp_path / "repro/simulation/bad.py").write_text("x = 1\n", encoding="utf-8")
        assert self.cli(tmp_path) == 0
        assert "stale" in capsys.readouterr().out
        # Re-tightening empties the baseline again.
        assert self.cli(tmp_path, "--write-baseline") == 0
        assert load_baseline(tmp_path / "baseline.json").entries == {}

    def test_regression_beyond_allowance_fails(self, tmp_path):
        self.seed_tree(tmp_path)
        assert self.cli(tmp_path, "--write-baseline") == 0
        (tmp_path / "repro/simulation/bad.py").write_text(
            "import time\na = time.time()\nb = time.time()\n", encoding="utf-8"
        )
        assert self.cli(tmp_path) == 1

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        self.seed_tree(tmp_path)
        (tmp_path / "baseline.json").write_text('{"version": 99}', encoding="utf-8")
        assert self.cli(tmp_path) == 2

    def test_explain_exit_codes(self, capsys):
        assert lint_main(["--explain", "DET001"]) == 0
        assert "DET001" in capsys.readouterr().out
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out
        assert lint_main(["--explain", "NOPE99"]) == 2

    def test_real_tree_via_cli_is_clean(self, capsys):
        assert lint_main([]) == 0
        assert "FAIL" not in capsys.readouterr().out
