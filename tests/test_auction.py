"""Unit tests for the MakerDAO tend-dent auction state machine (Section 3.2.1)."""

import pytest

from repro.chain.types import make_address
from repro.core.auction import AuctionConfig, AuctionError, AuctionPhase, TendDentAuction

ALICE = make_address("alice")
BOB = make_address("bob")


@pytest.fixture()
def auction():
    return TendDentAuction(
        auction_id=1,
        borrower=make_address("vault"),
        collateral_symbol="ETH",
        debt_symbol="DAI",
        collateral_lot=10.0,
        debt_target=10_000.0,
        start_block=100,
        config=AuctionConfig(auction_length_blocks=1_000, bid_duration_blocks=300, min_bid_increase=0.03),
    )


class TestTendPhase:
    def test_starts_in_tend_phase(self, auction):
        assert auction.phase is AuctionPhase.TEND

    def test_first_bid_recorded(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        assert auction.current_debt_bid == pytest.approx(5_000.0)
        assert auction.winning_bidder == ALICE

    def test_bid_must_beat_previous_by_increment(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        with pytest.raises(AuctionError):
            auction.place_tend_bid(BOB, 5_050.0, 111)

    def test_bid_above_increment_accepted(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        auction.place_tend_bid(BOB, 5_200.0, 111)
        assert auction.winning_bidder == BOB

    def test_bid_cannot_exceed_debt_target(self, auction):
        with pytest.raises(AuctionError):
            auction.place_tend_bid(ALICE, 11_000.0, 110)

    def test_first_bid_must_be_positive(self, auction):
        with pytest.raises(AuctionError):
            auction.place_tend_bid(ALICE, 0.0, 110)

    def test_reaching_debt_target_moves_to_dent(self, auction):
        auction.place_tend_bid(ALICE, 10_000.0, 110)
        assert auction.phase is AuctionPhase.DENT


class TestDentPhase:
    def test_dent_bid_requires_dent_phase(self, auction):
        with pytest.raises(AuctionError):
            auction.place_dent_bid(ALICE, 9.0, 110)

    def test_dent_bids_decrease_collateral(self, auction):
        auction.place_tend_bid(ALICE, 10_000.0, 110)
        auction.place_dent_bid(BOB, 9.0, 111)
        assert auction.current_collateral_bid == pytest.approx(9.0)
        assert auction.winning_bidder == BOB

    def test_dent_bid_must_shave_minimum(self, auction):
        auction.place_tend_bid(ALICE, 10_000.0, 110)
        auction.place_dent_bid(BOB, 9.0, 111)
        with pytest.raises(AuctionError):
            auction.place_dent_bid(ALICE, 8.95, 112)

    def test_dent_bid_must_be_positive(self, auction):
        auction.place_tend_bid(ALICE, 10_000.0, 110)
        with pytest.raises(AuctionError):
            auction.place_dent_bid(BOB, 0.0, 111)


class TestTermination:
    def test_expires_after_auction_length(self, auction):
        assert not auction.is_expired(500)
        assert auction.is_expired(1_100)

    def test_expires_after_bid_duration_since_last_bid(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        assert not auction.is_expired(300)
        assert auction.is_expired(420)

    def test_cannot_bid_after_expiry(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        with pytest.raises(AuctionError):
            auction.place_tend_bid(BOB, 6_000.0, 500)

    def test_finalize_before_expiry_rejected(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        with pytest.raises(AuctionError):
            auction.finalize(200)

    def test_finalize_returns_winning_bid(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        winner = auction.finalize(500)
        assert winner is not None and winner.bidder == ALICE
        assert auction.phase is AuctionPhase.FINALIZED

    def test_finalize_without_bids_returns_none(self, auction):
        assert auction.finalize(1_200) is None

    def test_double_finalize_rejected(self, auction):
        auction.finalize(1_200)
        with pytest.raises(AuctionError):
            auction.finalize(1_300)


class TestStatistics:
    def test_bid_counts(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        auction.place_tend_bid(BOB, 10_000.0, 120)
        auction.place_dent_bid(ALICE, 9.0, 130)
        assert auction.n_bids == 3
        assert auction.n_tend_bids == 2
        assert auction.n_dent_bids == 1
        assert auction.n_bidders == 2
        assert not auction.terminated_in_tend

    def test_duration_and_intervals(self, auction):
        auction.place_tend_bid(ALICE, 5_000.0, 110)
        auction.place_tend_bid(BOB, 10_000.0, 150)
        auction.finalize(460)
        assert auction.duration_blocks() == 360
        assert auction.first_bid_delay_blocks() == 10
        assert auction.bid_interval_blocks() == [40]
