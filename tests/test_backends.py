"""Tests for the execution-backend API: WorkerConfig, the registry, and the
serial / spawn / persistent backends.

The load-bearing contract is byte-identity: whichever backend (and however
many workers) executes a campaign, the store files must match the serial
ground truth exactly — including under the persistent backend's warm-worker
reuse.  The expensive checks run on drastically truncated windows (a few
engine strides per run) so the full scenario registry stays affordable.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import scenarios
from repro.campaigns import (
    CampaignExecutor,
    CampaignSpec,
    PersistentBackend,
    RunStore,
    SerialBackend,
    WorkerConfig,
    backend_names,
    create_backend,
    register_backend,
)
from repro.campaigns.executor import RunJob, WarmRunContext, execute_job
from repro.chain.types import make_address
from repro.cli import main
from repro.runtime_state import reset_run_state
from repro.service import ServiceConfig, ServiceSupervisor

#: Strides kept when truncating a scenario's window for cheap runs.
STRIDES = 20


def truncated_end_block(name: str) -> int:
    config = scenarios.get(name).builder(None).config
    return min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)


def tiny_spec(name: str = "small", **kwargs) -> CampaignSpec:
    defaults = dict(
        scenario=name,
        seeds=1,
        base_seed=11,
        overrides={"end_block": truncated_end_block(name)},
        experiments=("table1",),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def store_bytes(store: RunStore, campaign: str) -> dict[str, bytes]:
    """Every experiment file of a campaign, keyed by relative path.

    Manifests are excluded: they record which backend produced the run (the
    ``execution`` block), which is the one *intentional* difference.
    """
    out = {}
    for run_id in store.run_ids(campaign):
        directory = store.run_dir(campaign, run_id)
        for path in sorted(directory.glob("*.json")):
            if path.name == "manifest.json":
                continue
            out[f"{run_id}/{path.name}"] = path.read_bytes()
    return out


# --------------------------------------------------------------------- #
# WorkerConfig: the unified configuration surface
# --------------------------------------------------------------------- #


class TestWorkerConfig:
    def test_defaults_to_serial_single_worker(self):
        assert WorkerConfig() == WorkerConfig(backend="serial", workers=1)

    def test_resolve_auto_maps_worker_count_to_backend(self):
        assert WorkerConfig.resolve() == WorkerConfig(backend="serial", workers=1)
        assert WorkerConfig.resolve(backend="auto", workers=1).backend == "serial"
        resolved = WorkerConfig.resolve(backend="auto", workers=4)
        assert resolved == WorkerConfig(backend="persistent", workers=4)

    def test_resolve_serial_forces_one_worker(self):
        assert WorkerConfig.resolve(backend="serial", workers=8).workers == 1

    def test_resolve_parallel_backend_without_count_gets_host_default(self):
        resolved = WorkerConfig.resolve(backend="persistent")
        assert resolved.backend == "persistent"
        assert resolved.workers >= 2

    def test_from_workers_preserves_legacy_spawn_semantics(self):
        assert WorkerConfig.from_workers(1) == WorkerConfig(backend="serial", workers=1)
        assert WorkerConfig.from_workers(4) == WorkerConfig(backend="spawn", workers=4)

    def test_describe_round_trips_through_manifest_payload(self):
        config = WorkerConfig(backend="persistent", workers=3)
        assert WorkerConfig.from_payload(config.describe()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerConfig(backend="serial", workers=0)
        with pytest.raises(ValueError):
            WorkerConfig(backend="", workers=1)

    def test_unknown_backend_name_lists_registered(self):
        with pytest.raises(KeyError, match="serial"):
            create_backend(WorkerConfig(backend="no-such-backend", workers=1))

    def test_register_backend_extends_the_registry(self, tmp_path):
        register_backend("test-custom", lambda config: SerialBackend())
        try:
            assert "test-custom" in backend_names()
            store = RunStore(tmp_path)
            result = CampaignExecutor(
                tiny_spec(), store, backend=WorkerConfig(backend="test-custom", workers=1)
            ).execute()
            assert result.backend == "test-custom"
            assert not result.failed
        finally:
            from repro.campaigns import backends

            backends._BACKEND_FACTORIES.pop("test-custom", None)


class TestDeprecatedWorkersAlias:
    def test_workers_kwarg_warns_and_maps_to_spawn(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="workers=N"):
            executor = CampaignExecutor(tiny_spec(), RunStore(tmp_path), workers=3)
        assert executor.backend_config == WorkerConfig(backend="spawn", workers=3)
        assert executor.workers == 3

    def test_workers_one_maps_to_serial(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            executor = CampaignExecutor(tiny_spec(), RunStore(tmp_path), workers=1)
        assert executor.backend_config == WorkerConfig()


# --------------------------------------------------------------------- #
# Backend equivalence: byte-identity across the full scenario registry
# --------------------------------------------------------------------- #


def test_all_backends_byte_identical_for_every_registered_scenario(tmp_path):
    """Serial, spawn, and persistent execution must write identical
    experiment files for every registered scenario.

    One persistent backend instance is shared across all the campaigns —
    exactly its production shape — so this also proves warm-worker reuse
    across campaigns leaks no state between scenarios.
    """
    names = scenarios.names()
    serial_store = RunStore(tmp_path / "serial")
    spawn_store = RunStore(tmp_path / "spawn")
    persistent_store = RunStore(tmp_path / "persistent")

    for name in names:
        result = CampaignExecutor(tiny_spec(name), serial_store).execute()
        assert not result.failed, result.failed

    with PersistentBackend(workers=2) as persistent:
        for name in names:
            result = CampaignExecutor(tiny_spec(name), persistent_store, backend=persistent).execute()
            assert not result.failed, result.failed
            assert result.backend == "persistent"

    spawn_config = WorkerConfig(backend="spawn", workers=2)
    for name in names:
        result = CampaignExecutor(tiny_spec(name, seeds=2), spawn_store, backend=spawn_config).execute()
        assert not result.failed, result.failed

    for name in names:
        serial = store_bytes(serial_store, name)
        assert serial, f"no store files for {name}"
        assert store_bytes(persistent_store, name) == serial
        # The spawn sweep ran an extra seed; compare the shared subset.
        spawn = store_bytes(spawn_store, name)
        assert {k: spawn[k] for k in serial} == serial


def test_warm_feed_reuse_is_byte_identical_and_leaks_no_state(tmp_path):
    """A grid sweep sharing one warm worker must match cold serial execution
    byte for byte, and the warm cache must actually get hits."""
    spec_kwargs = dict(grid={"close_factor": (0.3, 0.5, 0.7)}, seeds=1)
    cold_store = RunStore(tmp_path / "cold")
    warm_store = RunStore(tmp_path / "warm")
    cold = CampaignExecutor(tiny_spec(**spec_kwargs), cold_store).execute()
    assert not cold.failed

    warm_backend = SerialBackend(warm=True)
    warm = CampaignExecutor(tiny_spec(**spec_kwargs), warm_store, backend=warm_backend).execute()
    assert not warm.failed
    assert store_bytes(warm_store, "small") == store_bytes(cold_store, "small")

    # The three grid points share one warm_key (close_factor is
    # feed-neutral), so the feed was built once and reused twice.
    assert warm_backend._warm.stats() == {"feed_hits": 2, "feed_builds": 1, "feeds_cached": 1}
    last = max(warm_store.run_ids("small"))
    digest = warm_store.read_manifest("small", last)["telemetry"]["warm_feed"]
    assert digest["feed_hits"] == 2


def test_warm_execution_leaves_id_counters_exactly_reset(tmp_path):
    """After a warm run, ``reset_run_state`` must restore the global id
    counters to the same point as after a cold run — the same-worker
    task-to-task isolation the persistent runtime depends on."""
    spec = tiny_spec()
    run = spec.runs()[0]
    job = RunJob(
        store_root=str(tmp_path / "a"),
        campaign=spec.campaign,
        run=run,
        experiments=spec.experiments,
    )
    outcome = execute_job(job)
    assert outcome.error is None
    reset_run_state()
    cold_probe = make_address("probe")

    warm = WarmRunContext()
    job2 = RunJob(
        store_root=str(tmp_path / "b"),
        campaign=spec.campaign,
        run=run,
        experiments=spec.experiments,
    )
    assert execute_job(job2, warm=warm).error is None  # builds the feed
    assert execute_job(job2, warm=warm).error is None  # warm hit
    assert warm.feed_hits == 1
    reset_run_state()
    assert make_address("probe") == cold_probe


def test_custom_feed_factories_are_never_warm_cached(tmp_path):
    """A scenario with a custom price-feed factory bypasses the warm cache
    (the factory may consume the build context)."""
    spec = tiny_spec()
    run = spec.runs()[0]
    warm = WarmRunContext()
    builder = run.builder()
    builder.with_price_feed(builder.build_feed())  # now a custom factory
    cached = warm.builder_for(run)  # default factory: cached
    assert warm.feed_builds == 1

    class _FixedFactorySpec:
        scenario = run.scenario
        overrides = run.overrides
        seed = run.seed
        warm_key = run.warm_key

        @staticmethod
        def builder():
            return builder

    out = warm.builder_for(_FixedFactorySpec)
    assert out is builder
    assert warm.feed_builds == 1 and warm.feed_hits == 0  # untouched


# --------------------------------------------------------------------- #
# Persistent backend: robustness and lifecycle
# --------------------------------------------------------------------- #


def test_persistent_worker_death_fails_pending_runs_and_respawns(tmp_path):
    """Killing a worker mid-task surfaces its pending runs as failed
    outcomes (never hangs, never silently drops) and the slot respawns."""
    spec = tiny_spec(seeds=2)
    jobs = [
        RunJob(
            store_root=str(tmp_path / "dead"),
            campaign=spec.campaign,
            run=run,
            experiments=spec.experiments,
        )
        for run in spec.runs()
    ]
    backend = PersistentBackend(workers=1)
    try:
        backend.start()
        outcomes: list = []
        collector = threading.Thread(target=lambda: outcomes.extend(backend.run(jobs)))
        collector.start()
        # Give dispatch a moment, then kill the only worker while both runs
        # are outstanding (spawn start-up alone outlasts this sleep).
        time.sleep(0.3)
        backend._procs[0].terminate()
        collector.join(timeout=60)
        assert not collector.is_alive(), "backend.run() hung after worker death"
        assert len(outcomes) == 2
        assert all(o.error and "persistent worker" in o.error for o in outcomes)

        # The slot respawned: the same backend executes new work fine.
        retry = CampaignExecutor(
            tiny_spec(), RunStore(tmp_path / "retry"), backend=backend
        ).execute()
        assert not retry.failed
    finally:
        backend.close()


def test_persistent_rejects_probes_and_reuse_after_close(tmp_path):
    spec = tiny_spec()
    job = RunJob(
        store_root=str(tmp_path),
        campaign=spec.campaign,
        run=spec.runs()[0],
        experiments=spec.experiments,
    )
    backend = PersistentBackend(workers=1)
    with pytest.raises(ValueError, match="extra_probes"):
        next(iter(backend.run([job], extra_probes=(lambda engine: None,))))
    backend.close()
    with pytest.raises(RuntimeError, match="closed"):
        backend.start()


def test_manifest_execution_block_survives_resume(tmp_path):
    """The execution block records the backend that *produced* the run;
    resuming under a different backend must not rewrite it."""
    store = RunStore(tmp_path)
    spec = tiny_spec()
    first = CampaignExecutor(spec, store, backend="persistent").execute()
    assert not first.failed
    run_id = spec.runs()[0].run_id
    manifest = store.read_manifest(spec.campaign, run_id)
    assert WorkerConfig.from_payload(manifest["execution"]).backend == "persistent"

    again = CampaignExecutor(spec, store).execute()
    assert again.resumed == [run_id] and not again.executed
    assert store.read_manifest(spec.campaign, run_id)["execution"]["backend"] == "persistent"


# --------------------------------------------------------------------- #
# CLI and service integration
# --------------------------------------------------------------------- #


def test_sweep_cli_backend_flag(tmp_path, capsys):
    code = main(
        [
            "sweep",
            "--scenario",
            "small",
            "--seeds",
            "1",
            "--set",
            f"end_block={truncated_end_block('small')}",
            "--report",
            "table1",
            "--store",
            str(tmp_path),
            "--backend",
            "persistent",
            "--workers",
            "2",
        ]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "persistent backend × 2 worker(s)" in err
    manifest = RunStore(tmp_path).read_manifest("small", "base-seed000")
    assert manifest["execution"] == {"backend": "persistent", "workers": 2}


def test_sweep_cli_rejects_unknown_backend(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--scenario", "small", "--backend", "threads", "--store", str(tmp_path)])
    assert excinfo.value.code == 2


def test_service_sweep_jobs_run_through_the_campaign_backend(tmp_path):
    """`repro serve --backend persistent` routes sweep runs through the
    shared ExecutionBackend interface: warm campaign workers, no streaming
    subprocess, manifests stamped with the producing backend."""
    supervisor = ServiceSupervisor(
        ServiceConfig(store_root=str(tmp_path), workers=2, backend="persistent")
    )
    supervisor.submit(
        {
            "kind": "sweep",
            "scenario": "small",
            "seeds": 2,
            "base_seed": 11,
            "overrides": {"end_block": truncated_end_block("small")},
            "experiments": ["table1"],
            "campaign": "svc-backend",
        }
    )
    summary = asyncio.run(supervisor.serve(exit_when_idle=True, install_signals=False))
    assert summary.completed_runs == 2 and summary.failed_runs == 0

    store = RunStore(tmp_path)
    for run_id in store.run_ids("svc-backend"):
        manifest = store.read_manifest("svc-backend", run_id)
        assert manifest["status"] == "completed"
        assert manifest["execution"] == {"backend": "persistent", "workers": 2}
        # Executed by a persistent campaign worker, not a streaming subprocess.
        assert manifest["telemetry"]["worker"].startswith("persistent-")
