"""Unit tests for the fixed spread liquidation model (Section 3.2.2)."""

import pytest

from repro.chain.types import make_address
from repro.core.fixed_spread import (
    LiquidationError,
    liquidate,
    max_repayable_debt,
    quote_liquidation,
)
from repro.core.position import Position
from repro.core.terminology import LiquidationParams

PRICES = {"ETH": 3_300.0, "USDC": 1.0}
THRESHOLDS = {"ETH": 0.8, "USDC": 0.85}
PARAMS = LiquidationParams(liquidation_threshold=0.8, liquidation_spread=0.10, close_factor=0.5)


@pytest.fixture()
def paper_position():
    """The Section 3.2.2 worked example after the ETH price decline."""
    position = Position(owner=make_address("example-borrower"))
    position.add_collateral("ETH", 3.0)  # worth 9,900 USD at 3,300 USD/ETH
    position.add_debt("USDC", 8_400.0)
    return position


class TestQuote:
    def test_paper_example_profit(self, paper_position):
        quote = quote_liquidation(paper_position, "USDC", "ETH", 4_200.0, PARAMS, PRICES, THRESHOLDS)
        assert quote.repay_usd == pytest.approx(4_200.0)
        assert quote.collateral_usd == pytest.approx(4_620.0)
        assert quote.profit_usd == pytest.approx(420.0)

    def test_paper_example_health_factor_before(self, paper_position):
        quote = quote_liquidation(paper_position, "USDC", "ETH", 4_200.0, PARAMS, PRICES, THRESHOLDS)
        assert quote.health_factor_before == pytest.approx(0.942857, rel=1e-4)

    def test_liquidation_improves_health_factor(self, paper_position):
        quote = quote_liquidation(paper_position, "USDC", "ETH", 4_200.0, PARAMS, PRICES, THRESHOLDS)
        assert quote.health_factor_after > quote.health_factor_before

    def test_healthy_position_cannot_be_liquidated(self):
        position = Position(owner=make_address("healthy"))
        position.add_collateral("ETH", 3.0)
        position.add_debt("USDC", 1_000.0)
        with pytest.raises(LiquidationError):
            quote_liquidation(position, "USDC", "ETH", 500.0, PARAMS, PRICES, THRESHOLDS)

    def test_close_factor_cap_enforced(self, paper_position):
        with pytest.raises(LiquidationError):
            quote_liquidation(paper_position, "USDC", "ETH", 5_000.0, PARAMS, PRICES, THRESHOLDS)

    def test_close_factor_cap_can_be_lifted(self, paper_position):
        quote = quote_liquidation(
            paper_position, "USDC", "ETH", 6_000.0, PARAMS, PRICES, THRESHOLDS, enforce_close_factor=False
        )
        assert quote.repay_amount == pytest.approx(6_000.0)

    def test_zero_repay_rejected(self, paper_position):
        with pytest.raises(LiquidationError):
            quote_liquidation(paper_position, "USDC", "ETH", 0.0, PARAMS, PRICES, THRESHOLDS)

    def test_unknown_debt_symbol_rejected(self, paper_position):
        with pytest.raises(LiquidationError):
            quote_liquidation(paper_position, "DAI", "ETH", 100.0, PARAMS, PRICES, {"ETH": 0.8, "DAI": 0.75})

    def test_seizure_clamped_to_available_collateral(self):
        position = Position(owner=make_address("thin"))
        position.add_collateral("ETH", 0.1)  # 330 USD of collateral
        position.add_debt("USDC", 5_000.0)
        quote = quote_liquidation(position, "USDC", "ETH", 2_500.0, PARAMS, PRICES, THRESHOLDS)
        assert quote.collateral_amount == pytest.approx(0.1)
        assert quote.repay_usd == pytest.approx(330.0 / 1.10)


class TestMaxRepayableAndApply:
    def test_max_repayable_respects_close_factor(self, paper_position):
        assert max_repayable_debt(paper_position, "USDC", PARAMS, PRICES) == pytest.approx(4_200.0)

    def test_liquidate_mutates_position(self, paper_position):
        quote = liquidate(paper_position, "USDC", "ETH", 4_200.0, PARAMS, PRICES, THRESHOLDS)
        assert paper_position.debt["USDC"] == pytest.approx(4_200.0)
        assert paper_position.collateral["ETH"] == pytest.approx(3.0 - quote.collateral_amount)

    def test_two_successive_liquidations_reduce_debt_twice(self, paper_position):
        liquidate(paper_position, "USDC", "ETH", 4_200.0, PARAMS, PRICES, THRESHOLDS)
        remaining_cap = max_repayable_debt(paper_position, "USDC", PARAMS, PRICES)
        assert remaining_cap == pytest.approx(2_100.0)
