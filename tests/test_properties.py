"""Property-based tests (hypothesis) on the core invariants."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.chain.types import make_address
from repro.core.fixed_spread import LiquidationError, quote_liquidation
from repro.core.optimal_strategy import (
    SimplePosition,
    liquidate_simple,
    optimal_strategy,
    up_to_close_factor_strategy,
)
from repro.core.position import Position
from repro.core.terminology import LiquidationParams, collateral_to_claim, health_factor
from repro.tokens.token import Token

reasonable_params = st.builds(
    LiquidationParams,
    liquidation_threshold=st.floats(min_value=0.4, max_value=0.85),
    liquidation_spread=st.floats(min_value=0.0, max_value=0.15),
    close_factor=st.floats(min_value=0.1, max_value=1.0),
).filter(lambda params: params.is_reasonable)

liquidatable_positions = st.builds(
    SimplePosition,
    collateral_usd=st.floats(min_value=1_000.0, max_value=1e9),
    debt_usd=st.floats(min_value=1_000.0, max_value=1e9),
)


class TestCoreProperties:
    @given(repay=st.floats(min_value=0.0, max_value=1e12), spread=st.floats(min_value=0.0, max_value=1.0))
    def test_collateral_claim_never_below_repay(self, repay, spread):
        assert collateral_to_claim(repay, spread) >= repay

    @given(capacity=st.floats(min_value=0.0, max_value=1e12), debt=st.floats(min_value=1e-6, max_value=1e12))
    def test_health_factor_scale_invariance(self, capacity, debt):
        scaled = health_factor(capacity * 3.0, debt * 3.0)
        assert scaled == pytest.approx(health_factor(capacity, debt), rel=1e-9)

    @settings(max_examples=60)
    @given(position=liquidatable_positions, params=reasonable_params)
    def test_optimal_strategy_never_worse_than_close_factor(self, position, params):
        if not position.is_liquidatable(params.liquidation_threshold):
            return
        optimal = optimal_strategy(position, params)
        close = up_to_close_factor_strategy(position, params)
        assert optimal.profit_usd >= close.profit_usd - 1e-6

    @settings(max_examples=60)
    @given(position=liquidatable_positions, params=reasonable_params)
    def test_optimal_first_liquidation_restores_health_to_at_most_one(self, position, params):
        if not position.is_liquidatable(params.liquidation_threshold):
            return
        outcome = optimal_strategy(position, params)
        intermediate = liquidate_simple(position, outcome.repays_usd[0], params)
        if intermediate.debt_usd <= 1e-9:
            # With close_factor 1 and zero spread the optimal first move can
            # close the position outright; an empty position has an infinite
            # health factor by convention, so the bound is vacuous.
            return
        assert intermediate.health_factor(params.liquidation_threshold) <= 1.0 + 1e-6

    @settings(max_examples=60)
    @given(
        collateral=st.floats(min_value=0.5, max_value=100.0),
        debt=st.floats(min_value=100.0, max_value=200_000.0),
        repay_fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_fixed_spread_quote_conserves_value(self, collateral, debt, repay_fraction):
        prices = {"ETH": 2_000.0, "DAI": 1.0}
        thresholds = {"ETH": 0.8, "DAI": 0.75}
        params = LiquidationParams(liquidation_threshold=0.8, liquidation_spread=0.08, close_factor=0.5)
        position = Position(owner=make_address("prop"))
        position.add_collateral("ETH", collateral)
        position.add_debt("DAI", debt)
        repay = debt * params.close_factor * repay_fraction
        try:
            quote = quote_liquidation(position, "DAI", "ETH", repay, params, prices, thresholds)
        except LiquidationError:
            return
        # The liquidator's bonus is exactly the spread on the repaid value
        # (unless clamped by available collateral, where it can only shrink).
        assert quote.profit_usd <= quote.repay_usd * params.liquidation_spread + 1e-6
        assert quote.collateral_usd == pytest.approx(quote.repay_usd + quote.profit_usd, rel=1e-9)
        # The seized collateral can never exceed what the borrower deposited.
        assert quote.collateral_amount <= collateral + 1e-9


class TestTokenProperties:
    @settings(max_examples=50)
    @given(
        amounts=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20),
        transfer_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_transfers_conserve_total_supply(self, amounts, transfer_fraction):
        token = Token(symbol="TEST")
        alice = make_address("prop-alice")
        bob = make_address("prop-bob")
        for amount in amounts:
            token.mint(alice, amount)
        minted = token.total_supply
        token.transfer(alice, bob, token.balance_of(alice) * transfer_fraction)
        assert token.total_supply == pytest.approx(minted, rel=1e-12)
        assert token.balance_of(alice) + token.balance_of(bob) == pytest.approx(minted, rel=1e-9)

    @settings(max_examples=50)
    @given(mint=st.floats(min_value=1.0, max_value=1e9), burn_fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_burns_never_create_value(self, mint, burn_fraction):
        token = Token(symbol="TEST")
        holder = make_address("prop-holder")
        token.mint(holder, mint)
        token.burn(holder, mint * burn_fraction)
        assert token.total_supply == pytest.approx(mint * (1 - burn_fraction), rel=1e-9, abs=1e-6)
        assert token.balance_of(holder) >= 0.0


class TestAuctionProperties:
    @settings(max_examples=40)
    @given(
        bids=st.lists(st.floats(min_value=0.01, max_value=0.95), min_size=1, max_size=6),
        debt=st.floats(min_value=1_000.0, max_value=1e6),
    )
    def test_tend_bids_are_monotonically_increasing(self, bids, debt):
        from repro.core.auction import AuctionConfig, AuctionError, TendDentAuction

        auction = TendDentAuction(
            auction_id=1,
            borrower=make_address("prop-vault"),
            collateral_symbol="ETH",
            debt_symbol="DAI",
            collateral_lot=10.0,
            debt_target=debt,
            start_block=0,
            config=AuctionConfig(auction_length_blocks=10**6, bid_duration_blocks=10**6),
        )
        previous = 0.0
        for index, fraction in enumerate(bids):
            bid = debt * fraction
            bidder = make_address(f"prop-bidder-{index}")
            try:
                auction.place_tend_bid(bidder, bid, block_number=index + 1)
            except AuctionError:
                continue
            assert bid > previous
            previous = bid
        recorded = [bid.debt_bid for bid in auction.bids]
        assert recorded == sorted(recorded)
