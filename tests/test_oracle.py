"""Unit tests for price feeds, synthetic paths and the posted oracle."""

import numpy as np
import pytest

from repro.oracle.chainlink import OracleConfig, PriceOracle
from repro.oracle.feed import PriceFeed, UnknownSymbol
from repro.oracle.paths import AssetPathConfig, Shock, apply_shocks, build_series, gbm_path, stablecoin_path


class TestPriceFeed:
    def test_price_lookup_maps_blocks_to_steps(self, flat_feed):
        assert flat_feed.price("ETH", 1_000) == pytest.approx(2_000.0)
        assert flat_feed.price("ETH", 1_005) == pytest.approx(2_000.0)  # same step

    def test_out_of_range_blocks_clamp(self, flat_feed):
        assert flat_feed.price("ETH", 10) == pytest.approx(2_000.0)
        assert flat_feed.price("ETH", 10**9) == pytest.approx(2_000.0)

    def test_unknown_symbol_raises(self, flat_feed):
        with pytest.raises(UnknownSymbol):
            flat_feed.price("NOPE", 1_000)

    def test_prices_at_returns_all_symbols(self, flat_feed):
        prices = flat_feed.prices_at(1_000)
        assert {"ETH", "DAI", "USDC", "WBTC"} <= set(prices)
        assert set(prices) == set(flat_feed.symbols())

    def test_window_slices_inclusive(self, flat_feed):
        window = flat_feed.window("ETH", 1_000, 1_050)
        assert len(window) == 6

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            PriceFeed(start_block=0, blocks_per_step=1, series={"A": np.ones(3), "B": np.ones(4)})

    def test_max_drawdown_of_declining_series(self):
        feed = PriceFeed(start_block=0, blocks_per_step=1, series={"X": np.array([100.0, 80.0, 90.0, 40.0])})
        assert feed.max_drawdown("X") == pytest.approx(0.6)

    def test_returns_length(self, flat_feed):
        assert len(flat_feed.returns("ETH")) == flat_feed.n_steps - 1


class TestPaths:
    def test_gbm_path_starts_at_initial_price(self):
        config = AssetPathConfig(initial_price=100.0, annual_volatility=0.5)
        path = gbm_path(config, 100, np.random.default_rng(1))
        assert path[0] == pytest.approx(100.0)
        assert (path > 0).all()

    def test_shock_applies_configured_drop(self):
        path = np.full(100, 100.0)
        shocked = apply_shocks(path, [Shock(step=50, magnitude=0.57)])
        assert shocked[49] == pytest.approx(100.0)
        assert shocked[60] == pytest.approx(57.0)

    def test_shock_recovery_ramps_back(self):
        path = np.full(100, 100.0)
        shocked = apply_shocks(path, [Shock(step=10, magnitude=0.5, recovery=1.0, recovery_steps=20)])
        assert shocked[90] == pytest.approx(100.0, rel=1e-6)

    def test_stablecoin_path_stays_near_peg(self):
        config = AssetPathConfig(initial_price=1.0, is_stablecoin=True, peg_volatility=0.002, peg_reversion=0.1)
        path = stablecoin_path(config, 2_000, np.random.default_rng(2))
        assert abs(path.mean() - 1.0) < 0.05
        assert path.std() < 0.05

    def test_build_series_is_deterministic_per_seed(self):
        configs = {"ETH": AssetPathConfig(initial_price=100.0), "DAI": AssetPathConfig(initial_price=1.0, is_stablecoin=True)}
        first = build_series(configs, 50, seed=3)
        second = build_series(configs, 50, seed=3)
        np.testing.assert_allclose(first["ETH"], second["ETH"])

    def test_build_series_streams_are_independent_of_extra_assets(self):
        base = {"ETH": AssetPathConfig(initial_price=100.0)}
        extended = dict(base, LINK=AssetPathConfig(initial_price=3.0))
        only_eth = build_series(base, 50, seed=3)["ETH"]
        with_link = build_series(extended, 50, seed=3)["ETH"]
        np.testing.assert_allclose(only_eth, with_link)


class TestPriceOracle:
    def test_falls_back_to_feed_before_first_post(self, chain, flat_feed):
        oracle = PriceOracle(chain, flat_feed)
        assert oracle.price("ETH") == pytest.approx(2_000.0)

    def test_update_posts_all_symbols_initially(self, chain, flat_feed):
        oracle = PriceOracle(chain, flat_feed)
        updated = oracle.update_from_feed()
        assert set(updated) == set(flat_feed.symbols())
        assert len(chain.events.by_name("AnswerUpdated")) == len(updated)

    def test_no_repost_when_price_unchanged(self, oracle):
        assert oracle.update_from_feed() == []

    def test_heartbeat_forces_repost(self, chain, flat_feed):
        oracle = PriceOracle(chain, flat_feed, OracleConfig(heartbeat_blocks=5))
        oracle.update_from_feed()
        for _ in range(6):
            chain.mine_block()
        assert "ETH" in oracle.update_from_feed()

    def test_override_reproduces_oracle_irregularity(self, oracle):
        oracle.set_override("DAI", 1.30)
        oracle.update_from_feed()
        assert oracle.price("DAI") == pytest.approx(1.30)
        oracle.clear_override("DAI")
        oracle.update_from_feed()
        assert oracle.price("DAI") == pytest.approx(1.0)

    def test_price_at_returns_posted_history(self, chain, flat_feed):
        oracle = PriceOracle(chain, flat_feed)
        oracle.post_price("ETH", 1_900.0, block_number=1_000)
        oracle.post_price("ETH", 2_100.0, block_number=1_010)
        assert oracle.price_at("ETH", 1_005) == pytest.approx(1_900.0)
        assert oracle.price_at("ETH", 1_010) == pytest.approx(2_100.0)

    def test_value_usd(self, oracle):
        assert oracle.value_usd("ETH", 2.0) == pytest.approx(4_000.0)
