"""Tests for the campaign subsystem: spec, store, executor, aggregation, CLI.

The expensive pieces run on a drastically truncated ``small`` window
(``end_block=9_760_000``, < 1 s per run) so that even the parallel-vs-serial
determinism check stays fast.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import (
    CampaignExecutor,
    CampaignSpec,
    RunStore,
    WorkerConfig,
    aggregate_campaign,
    apply_overrides,
    render_comparison,
    scalar_fields,
    spawn_seeds,
)
from repro.experiments.runner import EXPERIMENT_IDS, run_one
from repro.scenarios import PriceCrash, ScenarioBuilder
from repro.scenarios import get as get_scenario
from repro.serialize import to_jsonable
from repro.simulation.config import ScenarioConfig

#: Window truncation making a `small` run cheap enough for campaign tests.
TINY = {"end_block": 9_760_000}

#: A cheap experiment subset for executor tests (the sim dominates anyway).
FAST_EXPERIMENTS = ("table1", "fig4")


def tiny_spec(**kwargs) -> CampaignSpec:
    defaults = dict(
        scenario="small",
        seeds=2,
        overrides=TINY,
        experiments=FAST_EXPERIMENTS,
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def read_run_bytes(store: RunStore, campaign: str) -> dict[str, bytes]:
    """Every experiment file of a campaign, keyed by relative path."""
    out = {}
    for run_id in store.run_ids(campaign):
        for experiment_id in FAST_EXPERIMENTS:
            path = store.experiment_path(campaign, run_id, experiment_id)
            out[f"{run_id}/{experiment_id}"] = path.read_bytes()
    return out


class TestSerialize:
    def test_numpy_scalars_arrays_and_dataclasses(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Point:
            x: float
            tags: tuple[str, ...]

        data = {
            "scalar": np.float64(1.5),
            "count": np.int64(3),
            "array": np.arange(3),
            10.0: Point(x=np.float64(2.0), tags=("a", "b")),
        }
        jsonable = to_jsonable(data)
        assert jsonable == {
            "scalar": 1.5,
            "count": 3,
            "array": [0, 1, 2],
            "10.0": {"x": 2.0, "tags": ["a", "b"]},
        }
        assert json.loads(json.dumps(jsonable)) == jsonable

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_every_experiment_round_trips_through_json(self, experiment_id, small_result, small_records):
        payload = run_one(small_result, experiment_id, small_records).json_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestSeeds:
    def test_spawned_seeds_are_deterministic_and_distinct(self):
        seeds = spawn_seeds(0, 16)
        assert seeds == spawn_seeds(0, 16)
        assert len(set(seeds)) == 16
        assert spawn_seeds(1, 16) != seeds

    def test_seed_range_is_prefix_stable(self):
        # Growing a campaign from N to M seeds must keep the first N runs
        # valid in the store: spawn(M)[:N] == spawn(N).
        assert spawn_seeds(0, 8)[:3] == spawn_seeds(0, 3)


class TestSpec:
    def test_unknown_override_key_rejected(self):
        with pytest.raises(KeyError, match="unknown override"):
            CampaignSpec(scenario="small", overrides={"gravity": 9.8})

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            CampaignSpec(scenario="small", experiments=("table99",))

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="grid axis with no values"):
            CampaignSpec(scenario="small", grid={"close_factor": ()})

    def test_grid_crosses_axes(self):
        spec = CampaignSpec(
            scenario="small",
            seeds=2,
            grid={"close_factor": (0.5, 1.0), "crash_depth": (0.3,)},
        )
        variants = spec.variants()
        assert [label for label, _ in variants] == [
            "close_factor=0.5,crash_depth=0.3",
            "close_factor=1,crash_depth=0.3",
        ]
        runs = spec.runs()
        assert len(runs) == 4
        assert runs[0].run_id == "close_factor=0.5,crash_depth=0.3-seed000"

    def test_run_key_depends_on_overrides_and_seed(self):
        base, other = tiny_spec().runs()[0], tiny_spec(overrides={"end_block": 9_770_000}).runs()[0]
        assert base.run_id == other.run_id
        assert base.key != other.key


class TestOverrides:
    def test_close_factor_and_incentive_patch_every_protocol(self):
        builder = ScenarioBuilder(ScenarioConfig.small(3).with_overrides(**TINY))
        apply_overrides(builder, {"close_factor": 0.75, "liquidation_incentive": 0.11})
        engine = builder.build()
        for protocol in engine.protocols:
            assert protocol.close_factor == 0.75
            assert all(market.liquidation_spread == 0.11 for market in protocol.markets.values())

    def test_crash_depth_rewrites_crash_incidents_only(self):
        builder = get_scenario("stablecoin-depeg").builder()
        apply_overrides(builder, {"crash_depth": 0.6})
        drops = {incident.name: incident.drop for incident in builder.incidents if isinstance(incident, PriceCrash)}
        assert drops["usdt-depeg"] == 0.6  # positive drop: rewritten
        assert drops["dai-premium"] == -0.08  # spike: untouched

    def test_end_block_truncates_window(self):
        builder = get_scenario("small").builder()
        apply_overrides(builder, {"end_block": 9_760_000})
        assert builder.config.end_block == 9_760_000


class TestExecutorAndStore:
    def test_serial_and_parallel_runs_are_byte_identical(self, tmp_path):
        serial_store = RunStore(tmp_path / "serial")
        parallel_store = RunStore(tmp_path / "parallel")
        serial = CampaignExecutor(tiny_spec(), serial_store).execute()
        parallel = CampaignExecutor(
            tiny_spec(), parallel_store, backend=WorkerConfig(backend="spawn", workers=4)
        ).execute()
        assert sorted(serial.executed) == sorted(parallel.executed)
        assert not serial.resumed and not parallel.resumed
        serial_bytes = read_run_bytes(serial_store, "small")
        parallel_bytes = read_run_bytes(parallel_store, "small")
        assert serial_bytes.keys() == parallel_bytes.keys()
        assert serial_bytes == parallel_bytes

    def test_resume_skips_completed_and_runs_only_missing_seeds(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = CampaignExecutor(tiny_spec(seeds=2), store).execute()
        assert len(first.executed) == 2

        # Growing the same campaign to 3 seeds re-runs only the new seed.
        second = CampaignExecutor(tiny_spec(seeds=3), store).execute()
        assert second.executed == ["base-seed002"]
        assert sorted(second.resumed) == ["base-seed000", "base-seed001"]

        # A fully-completed campaign resumes everything: zero new runs.
        third = CampaignExecutor(tiny_spec(seeds=3), store).execute()
        assert third.executed == []
        assert len(third.resumed) == 3

    def test_changed_spec_invalidates_stored_runs(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        CampaignExecutor(tiny_spec(), store).execute()
        changed = tiny_spec(overrides={"end_block": 9_755_000})
        result = CampaignExecutor(changed, store).execute()
        assert len(result.executed) == 2 and not result.resumed

    def test_rewriting_a_run_clears_stale_experiment_files(self, tmp_path):
        # Re-executing a run under a changed spec must not leave the old
        # spec's experiment files behind: they would poison both resumption
        # and aggregation with data computed under a different config.
        store = RunStore(tmp_path / "runs")
        CampaignExecutor(tiny_spec(experiments=("table1", "fig4")), store).execute()
        changed = tiny_spec(overrides={"end_block": 9_755_000}, experiments=("table1",))
        CampaignExecutor(changed, store).execute()
        run_id = changed.runs()[0].run_id
        assert not store.experiment_path("small", run_id, "fig4").is_file()
        reverted = tiny_spec(
            overrides={"end_block": 9_755_000}, experiments=("table1", "fig4")
        )
        assert not store.is_complete("small", reverted.runs()[0], reverted.experiments)

    def test_failed_runs_are_reported_not_fatal(self, tmp_path):
        from repro.scenarios import register_scenario, unregister

        bad_seed = spawn_seeds(0, 2)[1]

        @register_scenario("exploding-test")
        def exploding(seed=None):
            builder = ScenarioBuilder(
                ScenarioConfig.small(seed or 1).with_overrides(**TINY)
            )

            def population(ctx, engine):
                if ctx.config.seed == bad_seed:
                    raise RuntimeError("boom")

            return builder.with_agents(population)

        try:
            spec = tiny_spec(scenario="exploding-test", seeds=2)
            result = CampaignExecutor(spec, RunStore(tmp_path / "runs")).execute()
            assert result.executed == ["base-seed000"]
            assert result.failed == {"base-seed001": "RuntimeError: boom"}
            assert result.total == 2
        finally:
            unregister("exploding-test")

    def test_manifest_contents(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        CampaignExecutor(tiny_spec(seeds=1), store).execute()
        manifest = store.read_manifest("small", "base-seed000")
        assert manifest["status"] == "completed"
        assert manifest["scenario"] == "small"
        assert manifest["overrides"] == {"end_block": 9_760_000}
        assert manifest["seed"] == spawn_seeds(0, 1)[0]
        assert manifest["experiments"] == sorted(FAST_EXPERIMENTS)
        assert manifest["config"]["end_block"] == 9_760_000
        assert manifest["execution"] == {"backend": "serial", "workers": 1}


class TestAggregate:
    def test_scalar_fields_flattens_dicts_and_skips_lists_and_bools(self):
        data = {
            "total": 3,
            "nested": {"mean": 1.5, "flag": True, "series": [1, 2, 3]},
            "label": "ETH",
        }
        assert scalar_fields(data) == {"total": 3.0, "nested.mean": 1.5}

    def test_statistics_across_seeds(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        spec = tiny_spec(seeds=3)
        CampaignExecutor(spec, store).execute()
        aggregate = aggregate_campaign(store, "small", FAST_EXPERIMENTS)
        assert aggregate.n_runs == 3
        (variant,) = aggregate.variants
        assert variant.variant == "base"
        assert variant.seeds == tuple(sorted(spec.seed_values()))
        stats = variant.experiments["table1"]
        field = stats.fields["total_liquidations"]
        values = [
            store.read_experiment("small", run_id, "table1")["data"]["total_liquidations"]
            for run_id in store.run_ids("small")
        ]
        assert field.n == 3
        assert field.mean == pytest.approx(np.mean(values))
        assert field.stddev == pytest.approx(np.std(values, ddof=1))
        assert field.ci95 == pytest.approx(1.96 * field.stddev / np.sqrt(3))
        report = render_comparison(aggregate)
        assert "total_liquidations" in report and "95% CI" in report

    def test_empty_campaign_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            aggregate_campaign(RunStore(tmp_path / "runs"), "nope")


class TestCli:
    def test_run_dedupes_repeated_report_ids(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.txt"
        code = main(
            [
                "run",
                "--scenario",
                "small",
                "--seed",
                "3",
                "--end-block",
                "9760000",
                "--report",
                "table1",
                "--report",
                "table1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.read_text().count("Table 1 —") == 1

    def test_list_tag_filter_and_json(self, capsys):
        from repro.cli import main

        assert main(["list", "--tag", "paper", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in listed} == {"paper-medium", "paper-full"}
        assert all("paper" in entry["tags"] for entry in listed)

    def test_reports_json(self, capsys):
        from repro.cli import main

        assert main(["reports", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in listed] == list(EXPERIMENT_IDS)

    def test_sweep_then_compare_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "runs"
        sweep_args = [
            "sweep",
            "--scenario",
            "small",
            "--seeds",
            "2",
            "--store",
            str(store),
            "--set",
            "end_block=9760000",
            "--report",
            "table1",
        ]
        assert main(sweep_args) == 0
        assert len(RunStore(store).run_ids("small")) == 2
        capsys.readouterr()

        assert main(["compare", "--store", str(store)]) == 0
        report = capsys.readouterr().out
        assert "Campaign 'small'" in report and "n=2" in report

        # Re-sweeping resumes everything from the store: zero new runs.
        assert main(sweep_args) == 0
        err = capsys.readouterr().err
        assert "2 resumed" in err and "0 executed" in err

    def test_sweep_rejects_unknown_scenario_and_override(self, tmp_path):
        from repro.cli import main

        assert main(["sweep", "--scenario", "nope", "--store", str(tmp_path)]) == 2
        assert (
            main(["sweep", "--scenario", "small", "--store", str(tmp_path), "--set", "gravity=9.8"]) == 2
        )

    def test_sweep_rejects_unknown_report_even_with_all(self, tmp_path):
        from repro.cli import main

        args = ["sweep", "--scenario", "small", "--store", str(tmp_path)]
        assert main([*args, "--report", "bogus", "--report", "all"]) == 2

    def test_sweep_rejects_empty_grid_axis(self, tmp_path):
        from repro.cli import main

        args = ["sweep", "--scenario", "small", "--store", str(tmp_path)]
        assert main([*args, "--grid", "close_factor=,,"]) == 2

    def test_compare_errors_without_campaigns(self, tmp_path):
        from repro.cli import main

        assert main(["compare", "--store", str(tmp_path / "empty")]) == 2
