"""Unit tests for Algorithm 1 (sensitivity) and the bad-debt / unprofitable models."""

import pytest

from repro.chain.types import make_address
from repro.core.bad_debt import BadDebtType, bad_debt_report, classify_position
from repro.core.position import Position
from repro.core.sensitivity import (
    liquidatable_collateral,
    most_sensitive_symbol,
    sensitivity_curve,
    sensitivity_surface,
)
from repro.core.terminology import LiquidationParams
from repro.core.unprofitable import best_liquidation_profit, find_opportunities, unprofitable_report

PRICES = {"ETH": 2_000.0, "DAI": 1.0, "WBTC": 30_000.0}
THRESHOLDS = {"ETH": 0.8, "DAI": 0.75, "WBTC": 0.7}
PARAMS = LiquidationParams(liquidation_threshold=0.8, liquidation_spread=0.08, close_factor=0.5)


def make_position(collateral_eth: float, debt_dai: float, owner: str = "b") -> Position:
    position = Position(owner=make_address(owner))
    position.add_collateral("ETH", collateral_eth)
    position.add_debt("DAI", debt_dai)
    return position


class TestSensitivity:
    def test_healthy_position_not_counted_at_zero_decline(self):
        positions = [make_position(1.0, 1_000.0)]
        assert liquidatable_collateral(positions, "ETH", 0.0, PRICES, THRESHOLDS) == 0.0

    def test_position_becomes_liquidatable_under_decline(self):
        positions = [make_position(1.0, 1_500.0)]  # HF = 1.0667 at current prices
        assert liquidatable_collateral(positions, "ETH", 0.0, PRICES, THRESHOLDS) == 0.0
        value = liquidatable_collateral(positions, "ETH", 0.2, PRICES, THRESHOLDS)
        assert value == pytest.approx(2_000.0 * 0.8)  # collateral valued after the decline

    def test_decline_of_unrelated_currency_has_no_effect(self):
        positions = [make_position(1.0, 1_500.0)]
        assert liquidatable_collateral(positions, "WBTC", 0.9, PRICES, THRESHOLDS) == 0.0

    def test_debt_in_declining_currency_also_shrinks(self):
        position = Position(owner=make_address("short"))
        position.add_collateral("ETH", 1.0)
        position.add_debt("ETH", 0.7)
        # Debt and collateral decline together: the position never liquidates.
        assert liquidatable_collateral([position], "ETH", 0.5, PRICES, THRESHOLDS) == 0.0

    def test_curve_is_monotone_in_count_of_liquidatable_positions(self):
        positions = [make_position(1.0, debt, owner=f"b{debt}") for debt in (1_200.0, 1_400.0, 1_550.0)]
        curve = sensitivity_curve(positions, "ETH", PRICES, THRESHOLDS, declines=[0.0, 0.1, 0.3, 0.6])
        values = [point.liquidatable_collateral_usd for point in curve]
        assert values[0] == 0.0
        assert values[2] > 0.0

    def test_invalid_decline_rejected(self):
        with pytest.raises(ValueError):
            liquidatable_collateral([], "ETH", 1.5, PRICES, THRESHOLDS)

    def test_most_sensitive_symbol_picks_the_largest_peak(self):
        positions = [make_position(10.0, 15_500.0)]
        surface = sensitivity_surface(positions, ["ETH", "WBTC"], PRICES, THRESHOLDS, declines=[0.0, 0.5, 1.0])
        assert most_sensitive_symbol(surface) == "ETH"


class TestBadDebt:
    def test_type_i_when_under_collateralized(self):
        record = classify_position(make_position(1.0, 2_500.0), PRICES, 100.0)
        assert record.kind is BadDebtType.TYPE_I

    def test_type_ii_when_excess_below_fee(self):
        record = classify_position(make_position(0.001, 1.95), PRICES, 100.0)
        assert record.kind is BadDebtType.TYPE_II

    def test_healthy_when_excess_covers_fee(self):
        record = classify_position(make_position(1.0, 500.0), PRICES, 100.0)
        assert record.kind is BadDebtType.HEALTHY

    def test_report_counts_and_collateral(self):
        positions = [
            make_position(1.0, 2_500.0, "under"),
            make_position(0.001, 1.95, "dust"),
            make_position(1.0, 500.0, "fine"),
            Position(owner=make_address("no-debt")),
        ]
        report = bad_debt_report(positions, PRICES, 100.0)
        assert report.total_positions == 3  # debt-free positions excluded
        assert report.type_i_count == 1
        assert report.type_ii_count == 1
        assert report.locked_collateral_usd == pytest.approx(2_000.0 + 2.0)

    def test_higher_fee_captures_more_type_ii(self):
        positions = [make_position(0.03, 10.0, "small")]  # 60 USD collateral, 50 USD excess
        low_fee = bad_debt_report(positions, PRICES, 10.0)
        high_fee = bad_debt_report(positions, PRICES, 100.0)
        assert low_fee.type_ii_count == 0
        assert high_fee.type_ii_count == 1


class TestUnprofitable:
    def test_profitable_opportunity_detected(self):
        positions = [make_position(1.0, 1_700.0)]  # liquidatable, sizeable
        report = unprofitable_report(positions, PARAMS, PRICES, THRESHOLDS, 10.0)
        assert report.liquidatable_positions == 1
        assert report.unprofitable_count == 0

    def test_small_position_is_unprofitable(self):
        positions = [make_position(0.001, 1.8)]  # bonus worth a few cents
        report = unprofitable_report(positions, PARAMS, PRICES, THRESHOLDS, 10.0)
        assert report.unprofitable_count == 1
        assert report.unprofitable_share == 1.0

    def test_healthy_positions_are_not_opportunities(self):
        positions = [make_position(1.0, 500.0)]
        assert find_opportunities(positions, PARAMS, PRICES, THRESHOLDS, 10.0) == []

    def test_best_profit_bounded_by_collateral(self):
        position = make_position(0.01, 1_000.0)  # 20 USD collateral against 1,000 USD debt
        profit = best_liquidation_profit(position, PARAMS, PRICES)
        assert profit <= 20.0
