"""Runtime sanitizer: bit-identity under the checks, and each check fires.

Two obligations, both load-bearing:

* **Transparency** — ``REPRO_SANITIZE=1`` must change *nothing* about a
  run: the sanitizer only reads simulated state and draws no RNG, so every
  registered scenario must replay bit-identically (events, snapshots,
  liquidation records) with the checks on.  Without this, nobody can debug
  a production run under the sanitizer and trust what they see.
* **Sensitivity** — every check must actually fire on the corruption it
  claims to catch, proven here by injecting each corruption directly:
  non-finite amounts into the position book, a desynchronised book row
  behind the vectorized scan, broken mempool bookkeeping, and a poisoned
  valuation cache.
"""

import json

import numpy as np
import pytest

from repro import sanitize, scenarios
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.chain.types import make_address, reset_id_counters
from repro.serialize import to_jsonable

#: Number of block strides each truncated bit-identity run covers.
STRIDES = 30

SEED = 31


def run_scenario(name: str, *, sanitized: bool):
    reset_id_counters()
    builder = scenarios.get(name).builder(seed=SEED)
    config = builder.config
    end_block = min(config.end_block, config.start_block + STRIDES * config.blocks_per_step)
    builder.config = config.with_overrides(end_block=end_block)
    engine = builder.build()
    # Stride 3: small enough that the truncated windows hit the periodic
    # cross-checks many times, odd so it interleaves against block strides.
    with sanitize.scoped(sanitized, check_stride=3):
        return engine.run()


def fingerprint(result) -> str:
    chain = result.chain
    return json.dumps(
        to_jsonable(
            {
                "events": [
                    (event.name, event.emitter.value, event.block_number, event.log_index, event.data)
                    for event in chain.events
                ],
                "snapshots": {str(block): chain.snapshot_at(block) for block in chain.snapshot_blocks},
                "records": result.records,
                "metrics": result.metrics,
                "final_block": result.final_block,
            }
        ),
        sort_keys=True,
    )


@pytest.mark.parametrize("name", scenarios.names())
def test_sanitized_runs_are_bit_identical(name):
    bare = run_scenario(name, sanitized=False)
    sanitized = run_scenario(name, sanitized=True)
    assert fingerprint(sanitized) == fingerprint(bare)


# --------------------------------------------------------------------- #
# Switch plumbing
# --------------------------------------------------------------------- #
class TestSwitch:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.enabled()

    @pytest.mark.parametrize("value,expected", [("1", True), ("true", True), ("0", False), ("off", False), ("", False)])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize.enabled() is expected

    def test_scoped_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with sanitize.scoped(False):
            assert not sanitize.enabled()
        assert sanitize.enabled()

    def test_stride_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "7")
        assert sanitize.stride() == 7
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "0")
        assert sanitize.stride() == 1  # clamped
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "nope")
        assert sanitize.stride() == 16  # default on garbage

    def test_sanitizer_error_is_assertion_error(self):
        assert issubclass(sanitize.SanitizerError, AssertionError)


# --------------------------------------------------------------------- #
# Negative tests: every check fires on its corruption
# --------------------------------------------------------------------- #
def run_small():
    """A 'small'-scenario engine *after* a short run, so positions exist."""
    reset_id_counters()
    builder = scenarios.get("small").builder(seed=SEED)
    config = builder.config
    builder.config = config.with_overrides(
        end_block=config.start_block + 10 * config.blocks_per_step
    )
    engine = builder.build()
    engine.run()
    return engine


def indebted_protocol(engine):
    protocol = max(engine.protocols, key=lambda p: len(p.positions_with_debt()))
    assert protocol.positions_with_debt(), "short 'small' run seeds indebted positions"
    return protocol


def first_indebted(protocol):
    return protocol.positions_with_debt()[0]


class TestBookFiniteGuard:
    def test_nan_collateral_rejected_at_sync(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        position = first_indebted(protocol)
        symbol = next(iter(position.collateral))
        position.add_collateral(symbol, float("nan"))  # x + nan = nan
        with sanitize.scoped(True):
            with pytest.raises(sanitize.SanitizerError, match="non-finite collateral"):
                protocol.book.sync()

    def test_inf_debt_rejected_at_sync(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        position = first_indebted(protocol)
        symbol = next(iter(position.debt))
        position.add_debt(symbol, float("inf"))
        with sanitize.scoped(True):
            with pytest.raises(sanitize.SanitizerError, match="non-finite debt"):
                protocol.book.sync()

    def test_sanitizer_off_lets_nan_through(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        position = first_indebted(protocol)
        symbol = next(iter(position.collateral))
        position.add_collateral(symbol, float("nan"))
        with sanitize.scoped(False):
            protocol.book.sync()  # the silent-poison behaviour the check exists for


class TestScanCrossCheck:
    def crash_prices(self, engine, protocol, factor=0.05):
        """Crash collateral prices (but not debt denominations) so the
        scalar sweep finds genuinely liquidatable positions."""
        debt_symbols = {
            symbol
            for position in protocol.positions_with_debt()
            for symbol, amount in position.debt.items()
            if amount > 0
        }
        for symbol, price in protocol.prices().items():
            if symbol not in debt_symbols:
                engine.oracle.post_price(symbol, price * factor)

    def test_desynchronised_book_row_detected(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        self.crash_prices(engine, protocol)
        protocol.book.sync()
        with sanitize.scoped(True, check_stride=1):
            truly = engine._scalar_candidates(protocol, False)
            assert truly, "price crash must make positions liquidatable"
            # Corrupt the columnar mirror behind the dirty tracking: zero the
            # victim's debt row, so the vectorized prefilter cannot flag it.
            victim = truly[0]
            row = victim._row
            protocol.book._debt[row, :] = 0.0
            with pytest.raises(sanitize.SanitizerError, match="diverged from"):
                engine._liquidatable_candidates(protocol)

    def test_clean_book_passes_cross_check(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        self.crash_prices(engine, protocol)
        with sanitize.scoped(True, check_stride=1):
            candidates = engine._liquidatable_candidates(protocol)
            assert candidates == engine._scalar_candidates(protocol, False)


class TestMempoolInvariants:
    def make_pool(self, n=8):
        pool = Mempool()
        sender = make_address("spammer")
        for i in range(n):
            pool.submit(Transaction(sender=sender, gas_price=(i + 1) * 10**9, gas_limit=21_000), current_block=1)
        return pool

    def test_clean_pool_passes(self):
        self.make_pool().check_invariants()

    def test_size_drift_detected(self):
        pool = self.make_pool()
        pool._size += 1
        with pytest.raises(sanitize.SanitizerError, match="live entries but _size"):
            pool.check_invariants()

    def test_mutated_bid_detected(self):
        pool = self.make_pool()
        victim = next(entry for entry in pool._heap if entry.alive)
        victim.transaction.gas_price *= 2  # bid change after submit: key is stale
        with pytest.raises(sanitize.SanitizerError, match="sort key"):
            pool.check_invariants()

    def test_missed_lazy_deletion_detected(self):
        pool = self.make_pool()
        # Simulate a view desync: kill an entry in the pack heap only,
        # leaving _size and the other views convinced it is alive.
        victim = next(entry for entry in pool._heap if entry.alive)
        victim.alive = False
        with pytest.raises(sanitize.SanitizerError):
            pool.check_invariants()

    def test_checked_from_mine_block(self):
        engine = run_small()
        engine.chain.mempool._size += 1
        with sanitize.scoped(True):
            with pytest.raises(sanitize.SanitizerError):
                engine.chain.mine_block()


class TestValuationCacheCoherence:
    def test_dirty_rows_behind_unchanged_revision_detected(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        with sanitize.scoped(True, check_stride=10_000):
            protocol.valuation()  # build
            protocol.book._dirty.add(0)  # bypass mark_dirty's revision bump
            with pytest.raises(sanitize.SanitizerError, match="dirty rows pending"):
                protocol.valuation()  # hit

    def test_stale_revision_detected(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        with sanitize.scoped(True, check_stride=10_000):
            cached = protocol.valuation()
            cached._built_at_revision -= 1  # cache now claims an older book
            with pytest.raises(sanitize.SanitizerError, match="stale"):
                protocol.valuation()

    def test_poisoned_cache_payload_detected_by_deep_check(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        with sanitize.scoped(True, check_stride=1):
            cached = protocol.valuation()
            cached.collateral_values[cached.collateral_values > 0] *= 1.5
            with pytest.raises(sanitize.SanitizerError, match="bitwise"):
                protocol.valuation()

    def test_clean_cache_passes_deep_check(self):
        engine = run_small()
        protocol = indebted_protocol(engine)
        with sanitize.scoped(True, check_stride=1):
            first = protocol.valuation()
            assert protocol.valuation() is first


# --------------------------------------------------------------------- #
# Non-finite floats through the serialization contract
# --------------------------------------------------------------------- #
class TestNonFiniteSerialization:
    def test_nonfinite_floats_become_strings(self):
        payload = to_jsonable(
            {
                "nan": float("nan"),
                "inf": float("inf"),
                "ninf": float("-inf"),
                "np_nan": np.float64("nan"),
                "nested": [np.inf, {"deep": -np.inf}],
                "finite": 1.5,
            }
        )
        assert payload["nan"] == "NaN"
        assert payload["inf"] == "Infinity"
        assert payload["ninf"] == "-Infinity"
        assert payload["np_nan"] == "NaN"
        assert payload["nested"] == ["Infinity", {"deep": "-Infinity"}]
        assert payload["finite"] == 1.5

    def test_nonfinite_array_round_trips_through_strict_json(self):
        payload = to_jsonable({"values": np.array([1.0, np.nan, np.inf])})
        text = json.dumps(payload, allow_nan=False)  # the store's strictness
        assert json.loads(text) == payload

    def test_store_dump_rejects_raw_nan(self):
        from repro.campaigns.store import _dump

        with pytest.raises(ValueError):
            _dump({"bad": float("nan")})
        # ...but anything that went through to_jsonable is safe:
        assert "NaN" in _dump(to_jsonable({"bad": float("nan")}))
