"""Unit tests for the agent behaviours on a minimal hand-built engine."""

import numpy as np
import pytest

from repro.agents.arbitrageur import ArbitrageurAgent
from repro.agents.borrower import BorrowerAgent, BorrowerProfile
from repro.agents.keeper import AuctionKeeperAgent, KeeperProfile
from repro.agents.lender import LenderAgent
from repro.agents.liquidator import LiquidatorAgent, LiquidatorProfile
from repro.amm.pool import ConstantProductPool
from repro.amm.router import AmmRouter
from repro.chain.chain import Blockchain, ChainConfig
from repro.chain.types import make_address
from repro.core.auction import AuctionConfig
from repro.flashloan.pool import FlashLoanPool, FlashLoanProvider
from repro.oracle.chainlink import PriceOracle
from repro.protocols.compound import make_compound
from repro.protocols.makerdao import make_makerdao
from repro.simulation.config import ScenarioConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.market import MarketMaker
from repro.tokens.registry import default_registry


def make_mini_engine(flat_feed):
    """A tiny engine with Compound + MakerDAO, funded pools and flash loans."""
    config = ScenarioConfig.small(seed=5).with_overrides(
        start_block=1_000, end_block=3_000, blocks_per_step=10, feed_blocks_per_step=10
    )
    registry = default_registry()
    chain = Blockchain(ChainConfig(inception_block=1_000, blocks_per_step=10))
    oracle = PriceOracle(chain, flat_feed)
    oracle.update_from_feed()
    compound = make_compound(chain, oracle, registry)
    compound.inception_block = 1_000
    makerdao = make_makerdao(chain, oracle, registry)
    makerdao.inception_block = 1_000
    makerdao.reconfigure_auctions(AuctionConfig(auction_length_blocks=40, bid_duration_blocks=15))
    flash = FlashLoanProvider()
    dai_pool = FlashLoanPool(platform="dYdX", token=registry.get("DAI"), fee_rate=0.0, chain=chain)
    funder = make_address("funder")
    registry.get("DAI").mint(funder, 10_000_000.0)
    dai_pool.fund(funder, 10_000_000.0)
    flash.register(dai_pool)
    engine = SimulationEngine(
        config=config,
        chain=chain,
        registry=registry,
        feed=flat_feed,
        oracle=oracle,
        protocols=[compound, makerdao],
        flash_loans=flash,
        amm=AmmRouter(),
        market_maker=MarketMaker(oracle=oracle, registry=registry),
    )
    return engine, compound, makerdao


@pytest.fixture()
def mini_engine(flat_feed):
    return make_mini_engine(flat_feed)


class TestLenderAndBorrower:
    def test_lender_supplies_liquidity_once(self, mini_engine):
        engine, compound, _ = mini_engine
        lender = LenderAgent("lender", np.random.default_rng(0), compound, {"DAI": 1_000_000.0})
        lender.act(engine)
        lender.act(engine)
        assert engine.registry.get("DAI").balance_of(compound.address) == pytest.approx(1_000_000.0)

    def test_borrower_opens_position_at_target_health(self, mini_engine):
        engine, compound, _ = mini_engine
        LenderAgent("lender", np.random.default_rng(0), compound, {"DAI": 1_000_000.0}).act(engine)
        profile = BorrowerProfile(collateral_symbols=("ETH",), debt_symbol="DAI", collateral_usd=20_000.0, target_health_factor=1.25)
        borrower = BorrowerAgent("borrower", np.random.default_rng(1), compound, profile)
        borrower.act(engine)
        assert borrower.opened
        health = compound.health_factor(borrower.address)
        assert health == pytest.approx(1.25, rel=0.05)

    def test_attentive_borrower_tops_up_after_price_drop(self, mini_engine):
        engine, compound, _ = mini_engine
        LenderAgent("lender", np.random.default_rng(0), compound, {"DAI": 1_000_000.0}).act(engine)
        profile = BorrowerProfile(
            collateral_symbols=("ETH",), debt_symbol="DAI", collateral_usd=20_000.0,
            target_health_factor=1.2, attentive=True, topup_trigger=1.1,
        )
        borrower = BorrowerAgent("borrower", np.random.default_rng(1), compound, profile)
        borrower.act(engine)
        engine.oracle.post_price("ETH", 1_700.0)
        borrower.act(engine)
        assert compound.health_factor(borrower.address) >= 1.1

    def test_inattentive_borrower_never_tops_up(self, mini_engine):
        engine, compound, _ = mini_engine
        LenderAgent("lender", np.random.default_rng(0), compound, {"DAI": 1_000_000.0}).act(engine)
        profile = BorrowerProfile(
            collateral_symbols=("ETH",), debt_symbol="DAI", collateral_usd=20_000.0,
            target_health_factor=1.1, attentive=False,
        )
        borrower = BorrowerAgent("borrower", np.random.default_rng(1), compound, profile)
        borrower.act(engine)
        engine.oracle.post_price("ETH", 1_600.0)
        borrower.act(engine)
        assert compound.is_liquidatable(borrower.address)


class TestLiquidator:
    def _open_unhealthy_position(self, engine, compound):
        LenderAgent("lender", np.random.default_rng(0), compound, {"DAI": 1_000_000.0}).act(engine)
        profile = BorrowerProfile(collateral_symbols=("ETH",), debt_symbol="DAI", collateral_usd=50_000.0, target_health_factor=1.05, attentive=False)
        borrower = BorrowerAgent("victim", np.random.default_rng(1), compound, profile)
        borrower.act(engine)
        engine.oracle.post_price("ETH", 1_800.0)
        return borrower

    def test_liquidator_submits_and_profits(self, mini_engine):
        engine, compound, _ = mini_engine
        borrower = self._open_unhealthy_position(engine, compound)
        profile = LiquidatorProfile(detection_probability=1.0, flash_loan_probability=0.0, min_profit_margin=1.0)
        liquidator = LiquidatorAgent("bot", np.random.default_rng(2), profile)
        liquidator.act(engine)
        assert liquidator.liquidations_attempted == 1
        block = engine.chain.mine_block()
        assert any(receipt.succeeded for receipt in block.receipts)
        assert len(engine.chain.events.by_name("LiquidateBorrow")) == 1
        assert compound.health_factor(borrower.address) > 1.0 or not compound.is_liquidatable(borrower.address)

    def test_flash_loan_liquidation_emits_flash_loan_event(self, mini_engine):
        engine, compound, _ = mini_engine
        self._open_unhealthy_position(engine, compound)
        profile = LiquidatorProfile(detection_probability=1.0, flash_loan_probability=1.0, min_profit_margin=1.0)
        LiquidatorAgent("flash-bot", np.random.default_rng(3), profile).act(engine)
        engine.chain.mine_block()
        assert len(engine.chain.events.by_name("FlashLoan")) == 1
        assert len(engine.chain.events.by_name("LiquidateBorrow")) == 1

    def test_liquidator_skips_unprofitable_opportunities(self, mini_engine):
        engine, compound, _ = mini_engine
        LenderAgent("lender", np.random.default_rng(0), compound, {"DAI": 1_000_000.0}).act(engine)
        profile = BorrowerProfile(collateral_symbols=("ETH",), debt_symbol="DAI", collateral_usd=30.0, target_health_factor=1.05, attentive=False)
        BorrowerAgent("dust", np.random.default_rng(1), compound, profile).act(engine)
        engine.oracle.post_price("ETH", 1_800.0)
        bot = LiquidatorAgent("bot", np.random.default_rng(2), LiquidatorProfile(detection_probability=1.0, min_profit_margin=1.5))
        bot.act(engine)
        assert bot.liquidations_attempted == 0

    def test_competition_second_liquidator_reverts(self, mini_engine):
        engine, compound, _ = mini_engine
        self._open_unhealthy_position(engine, compound)
        profile = LiquidatorProfile(detection_probability=1.0, flash_loan_probability=0.0, min_profit_margin=1.0)
        LiquidatorAgent("bot-a", np.random.default_rng(4), profile).act(engine)
        LiquidatorAgent("bot-b", np.random.default_rng(5), profile).act(engine)
        block = engine.chain.mine_block()
        liquidation_receipts = [r for r in block.receipts if r.kind.value == "liquidation"]
        assert len(liquidation_receipts) == 2
        assert sum(1 for r in liquidation_receipts if r.succeeded) >= 1
        assert len(engine.chain.events.by_name("LiquidateBorrow")) <= 2


class TestKeeper:
    def _open_unsafe_vault(self, engine, makerdao):
        owner = make_address("vault")
        engine.registry.get("ETH").mint(owner, 10.0)
        makerdao.deposit(owner, "ETH", 10.0)
        makerdao.borrow(owner, "DAI", 12_000.0)
        engine.oracle.post_price("ETH", 1_500.0)
        return owner

    def test_keeper_bites_bids_and_deals(self, mini_engine):
        engine, _, makerdao = mini_engine
        self._open_unsafe_vault(engine, makerdao)
        keeper = AuctionKeeperAgent(
            "keeper", np.random.default_rng(6), makerdao,
            KeeperProfile(detection_probability=1.0, offline_during_congestion=False, finalize_delay_probability=0.0),
        )
        for _ in range(12):
            keeper.act(engine)
            engine.step_index += 1
            engine._fixed_spread_cache = None
            engine._makerdao_cache = None
            engine.chain.mine_block()
        deals = [event for event in engine.chain.events.by_name("Deal") if event.data["winner"]]
        assert len(engine.chain.events.by_name("Bite")) >= 1
        assert len(engine.chain.events.by_name("Tend")) >= 1
        assert len(deals) >= 1

    def test_keeper_offline_during_congestion(self, mini_engine):
        engine, _, makerdao = mini_engine
        self._open_unsafe_vault(engine, makerdao)
        engine.chain.gas_market.trigger_congestion(10)
        keeper = AuctionKeeperAgent(
            "keeper", np.random.default_rng(7), makerdao,
            KeeperProfile(detection_probability=1.0, offline_during_congestion=True),
        )
        keeper.act(engine)
        assert len(engine.chain.mempool) == 0


class TestArbitrageur:
    def test_pool_realigned_to_oracle_price(self, mini_engine):
        engine, _, _ = mini_engine
        eth = engine.registry.get("ETH")
        dai = engine.registry.get("DAI")
        lp = make_address("amm-lp")
        eth.mint(lp, 100.0)
        dai.mint(lp, 150_000.0)  # pool price 1,500 vs oracle 2,000
        pool = ConstantProductPool(token_a=eth, token_b=dai)
        pool.add_liquidity(lp, 100.0, 150_000.0)
        engine.amm.register(pool)
        ArbitrageurAgent("arb", np.random.default_rng(8)).act(engine)
        assert pool.spot_price("ETH") == pytest.approx(2_000.0, rel=0.02)
