"""Unit tests for the core terminology (Equations 1-4)."""

import math

import pytest

from repro.core.terminology import (
    LiquidationParams,
    borrowing_capacity,
    collateral_to_claim,
    collateralization_ratio,
    health_factor,
    is_liquidatable,
    is_under_collateralized,
    liquidation_profit,
)


class TestCollateralToClaim:
    def test_matches_equation_1(self):
        assert collateral_to_claim(1_000.0, 0.1) == pytest.approx(1_100.0)

    def test_zero_spread_claims_exactly_the_repaid_value(self):
        assert collateral_to_claim(500.0, 0.0) == pytest.approx(500.0)

    def test_paper_example_liquidation(self):
        # Section 3.2.2: repaying 4,200 USDC at LS = 10% claims 4,620 USD of ETH.
        assert collateral_to_claim(4_200.0, 0.10) == pytest.approx(4_620.0)

    def test_negative_repay_rejected(self):
        with pytest.raises(ValueError):
            collateral_to_claim(-1.0, 0.1)

    def test_profit_is_spread_times_repay(self):
        assert liquidation_profit(4_200.0, 0.10) == pytest.approx(420.0)


class TestCollateralizationRatio:
    def test_over_collateralized(self):
        assert collateralization_ratio(150.0, 100.0) == pytest.approx(1.5)

    def test_under_collateralized(self):
        assert is_under_collateralized(90.0, 100.0)

    def test_exactly_collateralized_is_not_under(self):
        assert not is_under_collateralized(100.0, 100.0)

    def test_no_debt_gives_infinite_ratio(self):
        assert math.isinf(collateralization_ratio(100.0, 0.0))


class TestBorrowingCapacity:
    def test_single_asset(self):
        assert borrowing_capacity({"ETH": 10_500.0}, {"ETH": 0.8}) == pytest.approx(8_400.0)

    def test_multi_asset_sums_per_asset_thresholds(self):
        capacity = borrowing_capacity({"ETH": 1_000.0, "WBTC": 2_000.0}, {"ETH": 0.8, "WBTC": 0.6})
        assert capacity == pytest.approx(1_000.0 * 0.8 + 2_000.0 * 0.6)

    def test_unknown_asset_contributes_nothing(self):
        assert borrowing_capacity({"XYZ": 1_000.0}, {"ETH": 0.8}) == 0.0

    def test_negative_collateral_rejected(self):
        with pytest.raises(ValueError):
            borrowing_capacity({"ETH": -1.0}, {"ETH": 0.8})


class TestHealthFactor:
    def test_paper_fixed_spread_example(self):
        # Section 3.2.2: BC 7,920 USD over 8,400 USD debt gives HF ≈ 0.94.
        assert health_factor(7_920.0, 8_400.0) == pytest.approx(0.942857, rel=1e-5)

    def test_liquidatable_below_one(self):
        assert is_liquidatable(7_920.0, 8_400.0)

    def test_healthy_above_one(self):
        assert not is_liquidatable(8_400.0, 7_920.0)

    def test_no_debt_is_never_liquidatable(self):
        assert math.isinf(health_factor(100.0, 0.0))
        assert not is_liquidatable(100.0, 0.0)


class TestLiquidationParams:
    def test_reasonable_configuration(self):
        params = LiquidationParams(liquidation_threshold=0.8, liquidation_spread=0.1, close_factor=0.5)
        assert params.is_reasonable

    def test_unreasonable_configuration(self):
        params = LiquidationParams(liquidation_threshold=0.95, liquidation_spread=0.1, close_factor=0.5)
        assert not params.is_reasonable

    @pytest.mark.parametrize("threshold", [0.0, -0.1, 1.5])
    def test_invalid_threshold_rejected(self, threshold):
        with pytest.raises(ValueError):
            LiquidationParams(liquidation_threshold=threshold, liquidation_spread=0.1, close_factor=0.5)

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            LiquidationParams(liquidation_threshold=0.8, liquidation_spread=-0.01, close_factor=0.5)

    @pytest.mark.parametrize("close_factor", [0.0, 1.5])
    def test_invalid_close_factor_rejected(self, close_factor):
        with pytest.raises(ValueError):
            LiquidationParams(liquidation_threshold=0.8, liquidation_spread=0.05, close_factor=close_factor)
