"""Unit tests for the optimal fixed spread liquidation strategy (Section 5.2)."""

import math

import pytest

from repro.core.optimal_strategy import (
    SimplePosition,
    StrategyError,
    compare_strategies,
    liquidate_simple,
    mitigation_analysis,
    optimal_first_repay,
    optimal_profit_closed_form,
    optimal_strategy,
    profit_increase_rate,
    up_to_close_factor_strategy,
)
from repro.core.terminology import LiquidationParams

PARAMS = LiquidationParams(liquidation_threshold=0.75, liquidation_spread=0.08, close_factor=0.5)


@pytest.fixture()
def liquidatable_position():
    # CR ≈ 1.31, HF ≈ 0.985 < 1.
    return SimplePosition(collateral_usd=1_315_000.0, debt_usd=1_000_000.0)


class TestSimplePosition:
    def test_health_factor(self, liquidatable_position):
        assert liquidatable_position.health_factor(0.75) == pytest.approx(0.98625)

    def test_liquidatable(self, liquidatable_position):
        assert liquidatable_position.is_liquidatable(0.75)

    def test_debt_free_position_never_liquidatable(self):
        position = SimplePosition(collateral_usd=100.0, debt_usd=0.0)
        assert math.isinf(position.health_factor(0.75))

    def test_liquidate_simple_follows_algorithm_2(self, liquidatable_position):
        after = liquidate_simple(liquidatable_position, 100_000.0, PARAMS)
        assert after.debt_usd == pytest.approx(900_000.0)
        assert after.collateral_usd == pytest.approx(1_315_000.0 - 108_000.0)


class TestUpToCloseFactor:
    def test_repays_close_factor_of_debt(self, liquidatable_position):
        outcome = up_to_close_factor_strategy(liquidatable_position, PARAMS)
        assert outcome.repays_usd == (pytest.approx(500_000.0),)

    def test_profit_is_spread_on_repay(self, liquidatable_position):
        outcome = up_to_close_factor_strategy(liquidatable_position, PARAMS)
        assert outcome.profit_usd == pytest.approx(500_000.0 * 0.08)

    def test_requires_liquidatable_position(self):
        with pytest.raises(StrategyError):
            up_to_close_factor_strategy(SimplePosition(2_000_000.0, 1_000_000.0), PARAMS)


class TestOptimalStrategy:
    def test_first_repay_keeps_position_exactly_at_health_one(self, liquidatable_position):
        repay_1 = optimal_first_repay(liquidatable_position, PARAMS)
        after = liquidate_simple(liquidatable_position, repay_1, PARAMS)
        assert after.health_factor(PARAMS.liquidation_threshold) == pytest.approx(1.0, rel=1e-9)

    def test_equation_6_closed_form(self, liquidatable_position):
        expected = (1_000_000.0 - 0.75 * 1_315_000.0) / (1.0 - 0.75 * 1.08)
        assert optimal_first_repay(liquidatable_position, PARAMS) == pytest.approx(expected)

    def test_optimal_beats_up_to_close_factor(self, liquidatable_position):
        outcomes = compare_strategies(liquidatable_position, PARAMS)
        assert outcomes["optimal"].profit_usd > outcomes["up-to-close-factor"].profit_usd

    def test_closed_form_matches_constructive_profit(self, liquidatable_position):
        outcome = optimal_strategy(liquidatable_position, PARAMS)
        assert outcome.profit_usd == pytest.approx(optimal_profit_closed_form(liquidatable_position, PARAMS))

    def test_profit_increase_rate_equation_9(self, liquidatable_position):
        outcomes = compare_strategies(liquidatable_position, PARAMS)
        measured = (outcomes["optimal"].profit_usd - outcomes["up-to-close-factor"].profit_usd) / outcomes[
            "up-to-close-factor"
        ].profit_usd
        assert profit_increase_rate(liquidatable_position, PARAMS) == pytest.approx(measured, rel=1e-9)

    def test_increase_rate_larger_for_lower_collateralization(self):
        low_cr = SimplePosition(collateral_usd=1_280_000.0, debt_usd=1_000_000.0)
        high_cr = SimplePosition(collateral_usd=1_330_000.0, debt_usd=1_000_000.0)
        assert profit_increase_rate(low_cr, PARAMS) > profit_increase_rate(high_cr, PARAMS)

    def test_no_close_factor_means_no_advantage(self, liquidatable_position):
        params = LiquidationParams(liquidation_threshold=0.75, liquidation_spread=0.08, close_factor=1.0)
        assert profit_increase_rate(liquidatable_position, params) == 0.0

    def test_unreasonable_parameters_rejected(self, liquidatable_position):
        params = LiquidationParams(liquidation_threshold=0.95, liquidation_spread=0.10, close_factor=0.5)
        with pytest.raises(StrategyError):
            optimal_first_repay(liquidatable_position, params)

    def test_healthy_position_rejected(self):
        with pytest.raises(StrategyError):
            optimal_strategy(SimplePosition(2_000_000.0, 1_000_000.0), PARAMS)


class TestMitigation:
    def test_expected_profits_equations_10_11(self, liquidatable_position):
        analysis = mitigation_analysis(liquidatable_position, PARAMS)
        alpha = 0.3
        assert analysis.expected_profit_close_factor(alpha) == pytest.approx(alpha * analysis.profit_close_factor_usd)
        assert analysis.expected_profit_optimal(alpha) == pytest.approx(
            alpha * analysis.profit_optimal_first_usd + alpha**2 * analysis.profit_optimal_second_usd
        )

    def test_threshold_separates_preferences(self, liquidatable_position):
        analysis = mitigation_analysis(liquidatable_position, PARAMS)
        threshold = analysis.alpha_threshold
        assert 0.0 < threshold < 1.0
        assert analysis.prefers_optimal(min(threshold + 0.01, 0.999))
        assert not analysis.prefers_optimal(max(threshold - 0.01, 0.001))

    def test_small_miners_prefer_up_to_close_factor(self, liquidatable_position):
        analysis = mitigation_analysis(liquidatable_position, PARAMS)
        assert not analysis.prefers_optimal(0.05)
