"""Unit tests for the mechanism comparison metric and Appendix C's analysis."""

import pytest

from repro.core.comparison import (
    ProfitVolumePoint,
    average_ratio_by_platform,
    borrower_favourability,
    median_ratio_by_platform,
    monthly_profit_volume_ratios,
    rank_platforms,
)
from repro.core.configuration import (
    health_factor_after_liquidation,
    is_reasonable_configuration,
    liquidation_improves_health,
    reasonable_fraction,
    spread_upper_bound,
    sweep_configurations,
)
from repro.core.optimal_strategy import SimplePosition
from repro.core.terminology import LiquidationParams


class TestProfitVolume:
    def test_ratio_definition(self):
        point = ProfitVolumePoint(platform="dYdX", month="2020-05", profit_usd=10.0, average_collateral_usd=1_000.0)
        assert point.ratio == pytest.approx(0.01)

    def test_zero_volume_gives_zero_ratio(self):
        point = ProfitVolumePoint(platform="dYdX", month="2020-05", profit_usd=10.0, average_collateral_usd=0.0)
        assert point.ratio == 0.0

    def test_monthly_join_covers_all_months(self):
        points = monthly_profit_volume_ratios(
            {"Compound": {"2020-05": 5.0}},
            {"Compound": {"2020-05": 100.0, "2020-06": 200.0}},
        )
        months = {point.month for point in points}
        assert months == {"2020-05", "2020-06"}

    def test_average_and_median_ratios(self):
        points = [
            ProfitVolumePoint("dYdX", "2020-05", 10.0, 100.0),
            ProfitVolumePoint("dYdX", "2020-06", 30.0, 100.0),
            ProfitVolumePoint("MakerDAO", "2020-05", 1.0, 100.0),
        ]
        assert average_ratio_by_platform(points)["dYdX"] == pytest.approx(0.2)
        assert median_ratio_by_platform(points)["dYdX"] == pytest.approx(0.2)
        assert median_ratio_by_platform(points)["MakerDAO"] == pytest.approx(0.01)

    def test_median_robust_to_outlier_month(self):
        points = [ProfitVolumePoint("MakerDAO", f"2020-0{i}", 1.0, 100.0) for i in range(1, 6)]
        points.append(ProfitVolumePoint("MakerDAO", "2020-06", 1_000.0, 100.0))
        assert median_ratio_by_platform(points)["MakerDAO"] == pytest.approx(0.01)
        assert average_ratio_by_platform(points)["MakerDAO"] > 0.01

    def test_ranking_orders_borrower_friendly_first(self):
        points = [
            ProfitVolumePoint("dYdX", "2020-05", 50.0, 100.0),
            ProfitVolumePoint("MakerDAO", "2020-05", 1.0, 100.0),
            ProfitVolumePoint("Compound", "2020-05", 10.0, 100.0),
        ]
        assert rank_platforms(points) == ["MakerDAO", "Compound", "dYdX"]

    def test_borrower_favourability_summary(self):
        points = [
            ProfitVolumePoint("Compound", "2020-05", 10.0, 100.0),
            ProfitVolumePoint("Compound", "2020-06", 20.0, 100.0),
        ]
        summary = borrower_favourability(points)
        assert summary["Compound"]["months"] == 2.0
        assert summary["Compound"]["max_ratio"] == pytest.approx(0.2)


class TestConfiguration:
    def test_paper_parameterisations_are_reasonable(self):
        assert is_reasonable_configuration(0.8, 0.05)
        assert is_reasonable_configuration(0.75, 0.08)

    def test_extreme_parameterisation_is_unreasonable(self):
        assert not is_reasonable_configuration(0.95, 0.10)

    def test_equation_16_spread_upper_bound(self):
        position = SimplePosition(collateral_usd=1_200.0, debt_usd=1_000.0)
        assert spread_upper_bound(position) == pytest.approx(0.2)

    def test_under_collateralized_position_admits_no_spread(self):
        position = SimplePosition(collateral_usd=900.0, debt_usd=1_000.0)
        assert spread_upper_bound(position) < 0.0

    def test_liquidation_improves_health_when_spread_below_bound(self):
        params = LiquidationParams(liquidation_threshold=0.75, liquidation_spread=0.08, close_factor=0.5)
        position = SimplePosition(collateral_usd=1_300.0, debt_usd=1_000.0)
        assert liquidation_improves_health(position, 100.0, params)

    def test_liquidation_hurts_health_when_spread_above_bound(self):
        params = LiquidationParams(liquidation_threshold=0.9, liquidation_spread=0.30, close_factor=0.5)
        position = SimplePosition(collateral_usd=1_100.0, debt_usd=1_000.0)
        assert not liquidation_improves_health(position, 100.0, params)
        assert health_factor_after_liquidation(position, 100.0, params) < position.health_factor(0.9)

    def test_sweep_contains_both_regimes(self):
        checks = sweep_configurations()
        share = reasonable_fraction(checks)
        assert 0.0 < share < 1.0
