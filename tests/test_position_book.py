"""Tests for the columnar :class:`PositionBook` scan engine.

The central property: whatever interleaving of deposit / borrow / repay /
withdraw / liquidate / accrual hits the positions, the book's columnar
valuations stay equal to the scalar ``Position`` formulas within 1e-9, and
the margin-confirmed candidate set is exactly the scalar liquidatable set.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.types import make_address
from repro.core.position import DUST, Position
from repro.core.position_book import SCAN_MARGIN, PositionBook

SYMBOLS = ("ETH", "DAI", "WBTC", "USDC")

N_POSITIONS = 4


def build_book(n: int = N_POSITIONS) -> tuple[PositionBook, list[Position]]:
    book = PositionBook()
    for symbol in SYMBOLS:
        book.ensure_asset(symbol)
    positions = [Position(owner=make_address(f"user-{i}")) for i in range(n)]
    for position in positions:
        book.attach(position)
    return book, positions


# One mutation of the random interleaving: (op, position index, symbol
# index, relative amount in (0, 1]).
ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["deposit", "withdraw", "borrow", "repay", "liquidate", "accrue", "write_off", "scan"]
        ),
        st.integers(min_value=0, max_value=N_POSITIONS - 1),
        st.integers(min_value=0, max_value=len(SYMBOLS) - 1),
        st.floats(min_value=1e-3, max_value=1.0),
    ),
    min_size=1,
    max_size=60,
)

prices_strategy = st.tuples(*[st.floats(min_value=0.01, max_value=50_000.0) for _ in SYMBOLS])
thresholds_strategy = st.tuples(*[st.floats(min_value=0.0, max_value=0.95) for _ in SYMBOLS])


def apply_op(book: PositionBook, position: Position, op: str, symbol: str, fraction: float) -> None:
    if op == "deposit":
        position.add_collateral(symbol, fraction * 1_000.0)
    elif op == "withdraw":
        held = position.collateral.get(symbol, 0.0)
        if held > DUST:
            position.remove_collateral(symbol, fraction * held)
    elif op == "borrow":
        position.add_debt(symbol, fraction * 500.0)
    elif op == "repay":
        owed = position.debt.get(symbol, 0.0)
        if owed > DUST:
            position.reduce_debt(symbol, fraction * owed)
    elif op == "liquidate":
        owed = position.debt.get(symbol, 0.0)
        if owed > DUST:
            position.reduce_debt(symbol, 0.5 * fraction * owed)
        held = position.collateral.get(symbol, 0.0)
        if held > DUST:
            position.remove_collateral(symbol, 0.5 * fraction * held)
    elif op == "accrue":
        position.scale_debts({symbol: 1.0 + fraction * 0.05})
    elif op == "write_off":
        position.clear()
    elif op == "scan":
        # Interleaved scans exercise the dirty-row tracking mid-sequence.
        book.scan(dict.fromkeys(SYMBOLS, 1.0), dict.fromkeys(SYMBOLS, 0.5))


class TestColumnarEqualsScalar:
    @settings(max_examples=120, deadline=None)
    @given(operations=ops, prices=prices_strategy, thresholds=thresholds_strategy)
    def test_any_interleaving_keeps_valuations_equal(self, operations, prices, thresholds):
        book, positions = build_book()
        for op, pos_index, sym_index, fraction in operations:
            apply_op(book, positions[pos_index], op, SYMBOLS[sym_index], fraction)
        price_map = dict(zip(SYMBOLS, prices))
        threshold_map = dict(zip(SYMBOLS, thresholds))
        scan = book.scan(price_map, threshold_map)
        for row, position in enumerate(positions):
            assert scan.collateral_usd[row] == pytest.approx(
                position.total_collateral_usd(price_map), rel=1e-9, abs=1e-9
            )
            assert scan.debt_usd[row] == pytest.approx(
                position.total_debt_usd(price_map), rel=1e-9, abs=1e-9
            )
            assert scan.borrowing_capacity_usd[row] == pytest.approx(
                position.borrowing_capacity(price_map, threshold_map), rel=1e-9, abs=1e-9
            )
            assert bool(scan.has_debt[row]) == position.has_debt
            assert bool(scan.has_collateral[row]) == position.has_collateral
        # The margin-confirmed candidate set is exactly the scalar one.
        confirmed = {
            row
            for row in scan.candidate_rows()
            if book.position_at(int(row)).is_liquidatable(price_map, threshold_map)
        }
        scalar = {
            row
            for row, position in enumerate(positions)
            if position.has_debt and position.is_liquidatable(price_map, threshold_map)
        }
        assert confirmed == scalar
        # The prefilter may only over-approximate, never miss.
        assert scalar <= set(int(row) for row in scan.candidate_rows())

    @settings(max_examples=60, deadline=None)
    @given(operations=ops, prices=prices_strategy)
    def test_under_collateralized_prefilter_is_conservative(self, operations, prices):
        book, positions = build_book()
        for op, pos_index, sym_index, fraction in operations:
            apply_op(book, positions[pos_index], op, SYMBOLS[sym_index], fraction)
        price_map = dict(zip(SYMBOLS, prices))
        scan = book.scan(price_map, dict.fromkeys(SYMBOLS, 0.5))
        flagged = set(int(row) for row in scan.under_collateralized_rows())
        scalar = {
            row
            for row, position in enumerate(positions)
            if position.has_debt and position.is_under_collateralized(price_map)
        }
        assert scalar <= flagged
        confirmed = {
            row for row in flagged if book.position_at(row).is_under_collateralized(price_map)
        }
        assert confirmed == scalar


class TestValuationEqualsScalar:
    """The aggregate :class:`BookValuation` layer against the scalar walk."""

    @settings(max_examples=120, deadline=None)
    @given(operations=ops, prices=prices_strategy, thresholds=thresholds_strategy)
    def test_any_interleaving_keeps_totals_equal(self, operations, prices, thresholds):
        book, positions = build_book()
        for op, pos_index, sym_index, fraction in operations:
            apply_op(book, positions[pos_index], op, SYMBOLS[sym_index], fraction)
        price_map = dict(zip(SYMBOLS, prices))
        threshold_map = dict(zip(SYMBOLS, thresholds))
        valuation = book.valuation(price_map, threshold_map)

        scalar_collateral = sum(p.total_collateral_usd(price_map) for p in positions)
        scalar_debt = sum(p.total_debt_usd(price_map) for p in positions)

        # Fast tier: within 1e-9 of the scalar walk under any interleaving.
        assert valuation.total_collateral_usd() == pytest.approx(scalar_collateral, rel=1e-9, abs=1e-9)
        assert valuation.total_debt_usd() == pytest.approx(scalar_debt, rel=1e-9, abs=1e-9)
        for row, position in enumerate(positions):
            assert valuation.collateral_usd[row] == pytest.approx(
                position.total_collateral_usd(price_map), rel=1e-9, abs=1e-9
            )
            assert valuation.debt_usd[row] == pytest.approx(
                position.total_debt_usd(price_map), rel=1e-9, abs=1e-9
            )
            assert bool(valuation.has_debt[row]) == position.has_debt
            assert bool(valuation.has_collateral[row]) == position.has_collateral

        # Pinned tier: bit-identical to the scalar walk, not just close.
        assert valuation.pinned_total_collateral_usd() == scalar_collateral
        assert valuation.pinned_total_debt_usd() == scalar_debt
        health = valuation.pinned_health_factors()
        for row, position in enumerate(positions):
            collateral_usd, debt_usd = valuation.pinned_row_values(row)
            assert collateral_usd == position.total_collateral_usd(price_map)
            assert debt_usd == position.total_debt_usd(price_map)
            assert health[row] == position.health_factor(price_map, threshold_map)

    @settings(max_examples=60, deadline=None)
    @given(operations=ops, prices=prices_strategy)
    def test_debt_total_matches_scalar_walk_bitwise(self, operations, prices):
        book, positions = build_book()
        for op, pos_index, sym_index, fraction in operations:
            apply_op(book, positions[pos_index], op, SYMBOLS[sym_index], fraction)
        for symbol in SYMBOLS:
            assert book.debt_total(symbol) == sum(
                position.debt.get(symbol, 0.0) for position in positions
            )
        assert book.debt_total("UNTRACKED") == 0.0

    def test_valuation_candidate_prefilter_matches_scan(self):
        book, positions = build_book()
        positions[0].add_collateral("ETH", 1.0)
        positions[0].add_debt("DAI", 90.0)  # HF < 1 at the prices below
        positions[1].add_collateral("ETH", 1.0)
        positions[1].add_debt("DAI", 10.0)  # healthy
        prices = {"ETH": 100.0, "DAI": 1.0, "WBTC": 1.0, "USDC": 1.0}
        thresholds = {"ETH": 0.8, "DAI": 0.8, "WBTC": 0.8, "USDC": 0.8}
        valuation = book.valuation(prices, thresholds)
        scan = book.scan(prices, thresholds)
        assert valuation.candidate_rows().tolist() == scan.candidate_rows().tolist()
        assert valuation.under_collateralized_rows().tolist() == scan.under_collateralized_rows().tolist()

    def test_collateral_value_column_is_exact_products(self):
        book, positions = build_book(2)
        positions[0].add_collateral("ETH", 3.0)
        positions[1].add_debt("ETH", 1.0)
        prices = {"ETH": 99.9}
        valuation = book.valuation(prices, {})
        column = valuation.collateral_value_column("ETH")
        assert column[0] == 3.0 * 99.9
        assert column[1] == 0.0
        assert valuation.collateral_value_column("NOPE") is None

    def test_stale_valuation_refuses_first_pinned_access_after_mutation(self):
        """The lazy scalar fixup reads live position dicts; mixing them with
        the frozen arrays would be silent corruption, so a mutated book makes
        the first pinned access fail loudly instead."""
        book, positions = build_book(1)
        positions[0].add_collateral("ETH", 1.0)
        positions[0].add_collateral("DAI", 1.0)
        positions[0].add_collateral("WBTC", 1.0)  # 3 nonzero terms: ambiguous
        prices = dict.fromkeys(SYMBOLS, 2.0)
        valuation = book.valuation(prices, {})
        positions[0].add_collateral("ETH", 5.0)
        with pytest.raises(RuntimeError, match="mutated since"):
            valuation.pinned_total_collateral_usd()
        # A valuation whose pinned arrays were already materialized keeps
        # serving them (the dYdX write-off reads values row-by-row while
        # clearing earlier rows).
        fresh = book.valuation(prices, {})
        before = fresh.pinned_total_collateral_usd()
        positions[0].clear()
        assert fresh.pinned_total_collateral_usd() == before

    def test_revision_bumps_on_mutation_and_attach(self):
        book, positions = build_book(1)
        before = book.revision
        positions[0].add_collateral("ETH", 1.0)
        assert book.revision > before
        before = book.revision
        book.sync()
        assert book.revision == before  # sync is bookkeeping, not a change
        book.ensure_asset("YFI")
        assert book.revision > before


class TestBookMechanics:
    def test_attach_marks_row_dirty_and_sync_clears(self):
        book, positions = build_book(2)
        assert book.dirty_rows == frozenset({0, 1})
        assert book.sync() == 2
        assert book.dirty_rows == frozenset()
        positions[1].add_debt("ETH", 5.0)
        assert book.dirty_rows == frozenset({1})
        assert book.sync() == 1

    def test_clean_scan_syncs_nothing(self):
        book, positions = build_book(2)
        positions[0].add_collateral("ETH", 2.0)
        book.scan({"ETH": 100.0}, {"ETH": 0.8})
        assert book.sync() == 0

    def test_double_attach_rejected(self):
        book, positions = build_book(1)
        with pytest.raises(ValueError, match="already attached"):
            book.attach(positions[0])

    def test_copies_are_untracked(self):
        """What-if copies (quote previews) must not dirty the book."""
        book, positions = build_book(1)
        positions[0].add_debt("ETH", 1.0)
        book.sync()
        preview = positions[0].copy()
        preview.reduce_debt("ETH", 1.0)
        assert book.dirty_rows == frozenset()
        assert book.scan({"ETH": 10.0}, {"ETH": 0.8}).debt_usd[0] == pytest.approx(10.0)

    def test_new_asset_grows_columns_on_sync(self):
        book, positions = build_book(2)
        positions[0].add_collateral("YFI", 3.0)  # no pre-registered column
        scan = book.scan({"YFI": 1_000.0}, {"YFI": 0.5})
        assert "YFI" in book.assets
        assert scan.collateral_usd[0] == pytest.approx(3_000.0)
        assert scan.borrowing_capacity_usd[0] == pytest.approx(1_500.0)

    def test_row_capacity_growth_preserves_amounts(self):
        book = PositionBook()
        book.ensure_asset("ETH")
        positions = []
        for i in range(200):  # forces several capacity doublings
            position = Position(owner=make_address(f"grow-{i}"))
            book.attach(position)
            position.add_collateral("ETH", float(i))
            positions.append(position)
        scan = book.scan({"ETH": 2.0}, {"ETH": 0.5})
        assert scan.collateral_usd[123] == pytest.approx(246.0)
        assert len(book) == 200

    def test_health_factors_match_scalar(self):
        book, positions = build_book(3)
        positions[0].add_collateral("ETH", 10.0)
        positions[0].add_debt("DAI", 500.0)
        positions[1].add_collateral("ETH", 10.0)  # debt-free: HF = inf
        prices = {"ETH": 100.0, "DAI": 1.0}
        thresholds = {"ETH": 0.8, "DAI": 0.8}
        hf = book.scan(prices, thresholds).health_factors()
        assert hf[0] == pytest.approx(positions[0].health_factor(prices, thresholds))
        assert np.isinf(hf[1]) and np.isinf(hf[2])

    def test_missing_price_and_threshold_match_scalar_capacity(self):
        """Missing thresholds contribute no capacity, as in Equation 3."""
        book, positions = build_book(1)
        positions[0].add_collateral("ETH", 4.0)
        scan = book.scan({"ETH": 100.0, "DAI": 1.0}, {})
        assert scan.borrowing_capacity_usd[0] == 0.0
        assert scan.collateral_usd[0] == pytest.approx(400.0)

    def test_candidate_margin_is_conservative_at_the_boundary(self):
        """A position with HF exactly 1 sits inside the margin: flagged by
        the prefilter, rejected by the scalar confirmation."""
        book, positions = build_book(1)
        positions[0].add_collateral("ETH", 1.0)
        positions[0].add_debt("DAI", 80.0)
        prices = {"ETH": 100.0, "DAI": 1.0}
        thresholds = {"ETH": 0.8}
        scan = book.scan(prices, thresholds)
        assert scan.borrowing_capacity_usd[0] == pytest.approx(scan.debt_usd[0])
        assert 0 in scan.candidate_rows()
        assert not positions[0].is_liquidatable(prices, thresholds)
        assert SCAN_MARGIN < 1e-6
