"""Unit tests for multi-asset borrowing positions."""

import math

import pytest

from repro.chain.types import make_address
from repro.core.position import Position

PRICES = {"ETH": 2_000.0, "DAI": 1.0, "USDC": 1.0, "WBTC": 30_000.0}
THRESHOLDS = {"ETH": 0.8, "DAI": 0.75, "USDC": 0.85, "WBTC": 0.7}


@pytest.fixture()
def position():
    position = Position(owner=make_address("borrower"))
    position.add_collateral("ETH", 3.0)
    position.add_debt("DAI", 4_000.0)
    return position


class TestMutation:
    def test_add_collateral_accumulates(self, position):
        position.add_collateral("ETH", 2.0)
        assert position.collateral["ETH"] == pytest.approx(5.0)

    def test_remove_collateral(self, position):
        position.remove_collateral("ETH", 1.0)
        assert position.collateral["ETH"] == pytest.approx(2.0)

    def test_remove_all_collateral_clears_entry(self, position):
        position.remove_collateral("ETH", 3.0)
        assert "ETH" not in position.collateral

    def test_remove_too_much_collateral_raises(self, position):
        with pytest.raises(ValueError):
            position.remove_collateral("ETH", 4.0)

    def test_reduce_debt(self, position):
        position.reduce_debt("DAI", 1_000.0)
        assert position.debt["DAI"] == pytest.approx(3_000.0)

    def test_full_repayment_clears_debt(self, position):
        position.reduce_debt("DAI", 4_000.0)
        assert not position.has_debt

    def test_overpayment_raises(self, position):
        with pytest.raises(ValueError):
            position.reduce_debt("DAI", 5_000.0)

    def test_negative_amounts_rejected(self, position):
        with pytest.raises(ValueError):
            position.add_collateral("ETH", -1.0)
        with pytest.raises(ValueError):
            position.add_debt("DAI", -1.0)

    def test_scale_debt_applies_interest(self, position):
        position.scale_debt(1.1)
        assert position.debt["DAI"] == pytest.approx(4_400.0)


class TestValuation:
    def test_total_collateral_usd(self, position):
        assert position.total_collateral_usd(PRICES) == pytest.approx(6_000.0)

    def test_total_debt_usd(self, position):
        assert position.total_debt_usd(PRICES) == pytest.approx(4_000.0)

    def test_borrowing_capacity(self, position):
        assert position.borrowing_capacity(PRICES, THRESHOLDS) == pytest.approx(4_800.0)

    def test_health_factor(self, position):
        assert position.health_factor(PRICES, THRESHOLDS) == pytest.approx(1.2)

    def test_collateralization_ratio(self, position):
        assert position.collateralization_ratio(PRICES) == pytest.approx(1.5)

    def test_becomes_liquidatable_when_price_drops(self, position):
        crashed = dict(PRICES, ETH=1_500.0)
        assert position.is_liquidatable(crashed, THRESHOLDS)

    def test_healthy_at_current_prices(self, position):
        assert not position.is_liquidatable(PRICES, THRESHOLDS)

    def test_multi_asset_position_aggregates(self):
        position = Position(owner=make_address("multi"))
        position.add_collateral("ETH", 1.0)
        position.add_collateral("WBTC", 0.1)
        position.add_debt("DAI", 1_000.0)
        position.add_debt("USDC", 500.0)
        assert position.total_collateral_usd(PRICES) == pytest.approx(5_000.0)
        assert position.total_debt_usd(PRICES) == pytest.approx(1_500.0)

    def test_empty_position_has_infinite_health(self):
        position = Position(owner=make_address("empty"))
        assert math.isinf(position.health_factor(PRICES, THRESHOLDS))
        assert position.is_empty


class TestIntrospection:
    def test_symbols_listing(self, position):
        assert position.collateral_symbols() == ["ETH"]
        assert position.debt_symbols() == ["DAI"]

    def test_copy_is_independent(self, position):
        clone = position.copy()
        clone.add_debt("DAI", 1_000.0)
        assert position.debt["DAI"] == pytest.approx(4_000.0)

    def test_summary_contains_headline_values(self, position):
        summary = position.summary(PRICES, THRESHOLDS)
        assert summary["collateral_usd"] == pytest.approx(6_000.0)
        assert summary["health_factor"] == pytest.approx(1.2)
