"""Unit tests for the lending protocols: pool mechanics and fixed spread liquidations."""

import pytest

from repro.chain.transaction import TransactionReverted
from repro.chain.types import make_address
from repro.protocols.aave import make_aave_v2
from repro.protocols.base import ProtocolError
from repro.protocols.compound import make_compound
from repro.protocols.dydx import make_dydx
from repro.protocols.interest import KinkedRateModel, StabilityFeeModel


@pytest.fixture()
def compound(chain, oracle, registry):
    protocol = make_compound(chain, oracle, registry)
    lender = make_address("lender")
    for symbol, usd_amount in (("DAI", 10_000_000.0), ("USDC", 10_000_000.0), ("ETH", 10_000_000.0)):
        price = oracle.price(symbol)
        amount = usd_amount / price
        registry.get(symbol).mint(lender, amount)
        protocol.supply_liquidity(lender, symbol, amount)
    return protocol


@pytest.fixture()
def borrower(compound, registry):
    borrower = make_address("borrower")
    registry.get("ETH").mint(borrower, 10.0)
    compound.deposit(borrower, "ETH", 10.0)  # 20,000 USD collateral, LT 0.75
    compound.borrow(borrower, "DAI", 14_000.0)
    return borrower


class TestPoolMechanics:
    def test_deposit_and_borrow_update_position(self, compound, borrower):
        position = compound.position_of(borrower)
        assert position.collateral["ETH"] == pytest.approx(10.0)
        assert position.debt["DAI"] == pytest.approx(14_000.0)

    def test_borrow_beyond_capacity_rejected(self, compound, borrower):
        with pytest.raises(ProtocolError):
            compound.borrow(borrower, "DAI", 5_000.0)

    def test_borrow_requires_pool_liquidity(self, chain, oracle, registry):
        protocol = make_compound(chain, oracle, registry)
        user = make_address("no-liquidity")
        registry.get("ETH").mint(user, 1.0)
        protocol.deposit(user, "ETH", 1.0)
        with pytest.raises(ProtocolError):
            protocol.borrow(user, "DAI", 100.0)

    def test_repay_reduces_debt(self, compound, borrower, registry):
        registry.get("DAI").mint(borrower, 4_000.0)
        compound.repay(borrower, "DAI", 4_000.0)
        assert compound.position_of(borrower).debt["DAI"] == pytest.approx(10_000.0)

    def test_withdraw_blocked_if_position_would_become_unhealthy(self, compound, borrower):
        with pytest.raises(ProtocolError):
            compound.withdraw(borrower, "ETH", 9.0)

    def test_withdraw_allowed_within_capacity(self, compound, borrower):
        compound.withdraw(borrower, "ETH", 0.1)
        assert compound.position_of(borrower).collateral["ETH"] == pytest.approx(9.9)

    def test_unknown_market_rejected(self, compound):
        with pytest.raises(ProtocolError):
            compound.deposit(make_address("x"), "DOGE", 1.0)

    def test_usdt_not_accepted_as_collateral_on_compound(self, compound, registry):
        user = make_address("usdt-user")
        registry.ensure("USDT").mint(user, 100.0)
        with pytest.raises(ProtocolError):
            compound.deposit(user, "USDT", 100.0)

    def test_health_factor_query(self, compound, borrower):
        assert compound.health_factor(borrower) == pytest.approx(20_000.0 * 0.75 / 14_000.0)

    def test_accrue_interest_grows_debt(self, compound, borrower, chain):
        debt_before = compound.position_of(borrower).debt["DAI"]
        for _ in range(50):
            chain.mine_block()
        compound.accrue_interest()
        assert compound.position_of(borrower).debt["DAI"] > debt_before

    def test_snapshot_reports_positions(self, compound, borrower):
        snapshot = compound.snapshot()
        assert snapshot["platform"] == "Compound"
        owners = {entry["owner"] for entry in snapshot["positions"]}
        assert borrower.value in owners


class TestFixedSpreadLiquidation:
    def _crash_eth(self, oracle):
        oracle.post_price("ETH", 1_700.0)

    def test_liquidation_call_transfers_and_updates_position(self, compound, borrower, oracle, registry):
        self._crash_eth(oracle)
        liquidator = make_address("liquidator")
        registry.get("DAI").mint(liquidator, 7_000.0)
        result = compound.liquidation_call(liquidator, borrower, "DAI", "ETH", 7_000.0)
        assert result.quote.repay_usd == pytest.approx(7_000.0)
        assert result.quote.collateral_usd == pytest.approx(7_000.0 * 1.08)
        assert registry.get("ETH").balance_of(liquidator) == pytest.approx(7_000.0 * 1.08 / 1_700.0)
        assert compound.position_of(borrower).debt["DAI"] == pytest.approx(7_000.0)

    def test_liquidating_healthy_position_reverts(self, compound, borrower, registry):
        liquidator = make_address("liquidator")
        registry.get("DAI").mint(liquidator, 7_000.0)
        with pytest.raises(TransactionReverted):
            compound.liquidation_call(liquidator, borrower, "DAI", "ETH", 7_000.0)

    def test_close_factor_enforced_on_chain(self, compound, borrower, oracle, registry):
        self._crash_eth(oracle)
        liquidator = make_address("liquidator")
        registry.get("DAI").mint(liquidator, 14_000.0)
        with pytest.raises(TransactionReverted):
            compound.liquidation_call(liquidator, borrower, "DAI", "ETH", 10_000.0)

    def test_liquidator_without_funds_reverts(self, compound, borrower, oracle):
        self._crash_eth(oracle)
        with pytest.raises(TransactionReverted):
            compound.liquidation_call(make_address("broke"), borrower, "DAI", "ETH", 7_000.0)

    def test_liquidation_emits_protocol_specific_event(self, compound, borrower, oracle, registry, chain):
        self._crash_eth(oracle)
        liquidator = make_address("liquidator")
        registry.get("DAI").mint(liquidator, 7_000.0)
        compound.liquidation_call(liquidator, borrower, "DAI", "ETH", 7_000.0)
        assert len(chain.events.by_name("LiquidateBorrow")) == 1

    def test_best_liquidation_pair(self, compound, borrower, oracle):
        self._crash_eth(oracle)
        assert compound.best_liquidation_pair(borrower) == ("DAI", "ETH")

    def test_liquidatable_positions_listing(self, compound, borrower, oracle):
        assert compound.liquidatable_positions() == []
        self._crash_eth(oracle)
        assert len(compound.liquidatable_positions()) == 1


class TestProtocolParameters:
    def test_aave_close_factor_and_event(self, chain, oracle, registry):
        aave = make_aave_v2(chain, oracle, registry)
        assert aave.close_factor == pytest.approx(0.5)
        assert aave.LIQUIDATION_EVENT == "LiquidationCall"
        assert aave.liquidation_mechanism() == "fixed-spread"

    def test_aave_spread_range_matches_paper(self, chain, oracle, registry):
        aave = make_aave_v2(chain, oracle, registry)
        spreads = [market.liquidation_spread for market in aave.markets.values()]
        assert min(spreads) >= 0.05
        assert max(spreads) <= 0.15

    def test_dydx_full_close_factor(self, chain, oracle, registry):
        dydx = make_dydx(chain, oracle, registry)
        assert dydx.close_factor == pytest.approx(1.0)
        assert set(dydx.markets) == {"ETH", "USDC", "DAI"}

    def test_dydx_insurance_fund_writes_off_bad_debt(self, chain, oracle, registry):
        dydx = make_dydx(chain, oracle, registry)
        lender = make_address("dydx-lender")
        registry.get("USDC").mint(lender, 1_000_000.0)
        dydx.supply_liquidity(lender, "USDC", 1_000_000.0)
        borrower = make_address("dydx-borrower")
        registry.get("ETH").mint(borrower, 1.0)
        dydx.deposit(borrower, "ETH", 1.0)
        dydx.borrow(borrower, "USDC", 1_500.0)
        oracle.post_price("ETH", 1_000.0)  # collateral now worth less than the debt
        written_off = dydx.write_off_bad_debt()
        assert written_off > 0
        assert not dydx.position_of(borrower).has_debt

    def test_dydx_write_off_matches_scalar_reference(self, chain, oracle, registry):
        """The write-off runs through the columnar book; guard it against
        dirty-tracking bugs with a scalar reference computed independently
        (the engine's scalar backend does not cover this path)."""
        dydx = make_dydx(chain, oracle, registry)
        lender = make_address("dydx-lender")
        registry.get("USDC").mint(lender, 10_000_000.0)
        dydx.supply_liquidity(lender, "USDC", 10_000_000.0)
        # A spread of positions: some end up with CR < 1, some stay covered.
        for i, borrowed in enumerate((1_400.0, 900.0, 1_700.0, 300.0, 1_650.0)):
            borrower = make_address(f"dydx-spread-{i}")
            registry.get("ETH").mint(borrower, 1.0)
            dydx.deposit(borrower, "ETH", 1.0)
            dydx.borrow(borrower, "USDC", borrowed)
        oracle.post_price("ETH", 1_500.0)
        prices = dydx.prices()
        expected = {
            position.owner.value
            for position in dydx.positions_with_debt()
            if position.is_under_collateralized(prices)
        }
        assert expected  # the workload actually exercises the write-off
        expected_usd = sum(
            position.total_debt_usd(prices) - position.total_collateral_usd(prices)
            for position in dydx.positions_with_debt()
            if position.is_under_collateralized(prices)
        )
        written_off = dydx.write_off_bad_debt()
        cleared = {
            position.owner.value for position in dydx.positions.values() if position.is_empty
        }
        assert cleared == expected
        assert written_off == pytest.approx(expected_usd)
        assert all(
            not position.is_under_collateralized(dydx.prices())
            for position in dydx.positions_with_debt()
        )

    def test_interest_models(self):
        model = KinkedRateModel(base_rate=0.0, slope_low=0.04, slope_high=0.75, kink=0.8)
        assert model.borrow_apr(0.0) == pytest.approx(0.0)
        assert model.borrow_apr(0.8) == pytest.approx(0.04)
        assert model.borrow_apr(1.0) == pytest.approx(0.79)
        assert model.accrual_factor(0.5, 0) == 1.0
        assert model.accrual_factor(0.5, 1_000) > 1.0
        fee = StabilityFeeModel(annual_rate=0.02)
        assert fee.borrow_apr() == pytest.approx(0.02)
        assert fee.accrual_factor(0.0, 1_000) > 1.0
