"""Tests for the composable scenario API: builder, incidents, registry, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro import scenarios
from repro.analytics.records import extract_liquidations
from repro.experiments.runner import EXPERIMENT_IDS, run_all, run_one
from repro.scenarios import (
    AuctionReconfig,
    CongestionEpisode,
    FeedGrid,
    OracleOverride,
    PriceCrash,
    ScenarioBuilder,
    UnknownScenarioError,
    default_incidents,
    register_scenario,
)
from repro.simulation.config import ScenarioConfig
from repro.simulation.scenarios import build_price_feed


def tiny_config(seed: int = 3) -> ScenarioConfig:
    """A drastically truncated small window: cheap to build, fast to run."""
    return ScenarioConfig.small(seed=seed).with_overrides(end_block=9_760_000)


@pytest.fixture(scope="module")
def tiny_engine():
    """A built (not run) engine over the tiny window, for event/wiring tests."""
    return ScenarioBuilder(tiny_config()).build()


class TestIncidents:
    def test_price_crash_targets_all_risky_assets_by_default(self):
        grid = FeedGrid(start_block=0, blocks_per_step=100, n_steps=1_000)
        crash = PriceCrash(name="crash", block=20_000, drop=0.4)
        shocks = crash.price_shocks(grid)
        assert set(shocks) == {None}
        shock = shocks[None]
        assert shock.step == 200
        assert shock.magnitude == pytest.approx(0.6)

    def test_price_crash_outside_window_contributes_nothing(self):
        grid = FeedGrid(start_block=0, blocks_per_step=100, n_steps=50)
        crash = PriceCrash(name="crash", block=20_000, drop=0.4)
        assert crash.price_shocks(grid) == {}

    def test_negative_drop_is_a_spike(self):
        grid = FeedGrid(start_block=0, blocks_per_step=100, n_steps=1_000)
        spike = PriceCrash(name="premium", block=0, drop=-0.1, symbols=("DAI",))
        assert spike.price_shocks(grid)["DAI"].magnitude == pytest.approx(1.1)

    def test_default_incidents_schedule_in_block_sorted_named_events(self, tiny_engine):
        names = [event.name for event in tiny_engine.scheduled_events]
        assert names == [
            "march-2020-crash",
            "february-2021-crash",
            "compound-dai-oracle-irregularity",
            "compound-dai-oracle-recovery",
            "makerdao-auction-reconfiguration",
        ]

    def test_oracle_override_applies_and_recovers(self, tiny_engine):
        incident = OracleOverride(
            name="dai-glitch", block=1, symbol="DAI", price=1.5, duration_blocks=100, oracle="Compound"
        )
        before = len(tiny_engine.scheduled_events)
        incident.schedule(tiny_engine)
        apply_event, clear_event = tiny_engine.scheduled_events[before:]
        assert (apply_event.name, clear_event.name) == ("dai-glitch", "dai-glitch-recovery")
        compound_oracle = tiny_engine.protocol_oracles["Compound"]
        apply_event.action(tiny_engine)
        assert compound_oracle.overrides == {"DAI": 1.5}
        clear_event.action(tiny_engine)
        assert compound_oracle.overrides == {}
        del tiny_engine.scheduled_events[before:]

    def test_relative_oracle_override_scales_market_price(self, tiny_engine):
        incident = OracleOverride(
            name="eth-attack", block=1, symbol="ETH", price=0.5, relative=True,
            duration_blocks=0, oracle="chainlink",
        )
        before = len(tiny_engine.scheduled_events)
        incident.schedule(tiny_engine)
        (event,) = tiny_engine.scheduled_events[before:]
        event.action(tiny_engine)
        oracle = tiny_engine.protocol_oracles["chainlink"]
        market = tiny_engine.feed.price("ETH", tiny_engine.chain.current_block)
        assert oracle.overrides["ETH"] == pytest.approx(market * 0.5)
        oracle.clear_override("ETH")
        del tiny_engine.scheduled_events[before:]

    def test_auction_reconfig_lengthens_bid_duration(self, tiny_engine):
        makerdao = tiny_engine.makerdao
        before = makerdao.auction_config.bid_duration_blocks
        incident = AuctionReconfig(name="reconfig", block=1)
        mark = len(tiny_engine.scheduled_events)
        incident.schedule(tiny_engine)
        tiny_engine.scheduled_events[mark].action(tiny_engine)
        assert makerdao.auction_config.bid_duration_blocks > before
        del tiny_engine.scheduled_events[mark:]

    def test_congestion_episode_triggers_gas_congestion(self, tiny_engine):
        incident = CongestionEpisode(name="jam", block=1, congestion_blocks=8_000)
        mark = len(tiny_engine.scheduled_events)
        incident.schedule(tiny_engine)
        tiny_engine.scheduled_events[mark].action(tiny_engine)
        assert tiny_engine.chain.gas_market.is_congested
        del tiny_engine.scheduled_events[mark:]


class TestScenarioBuilder:
    def test_fluent_methods_return_the_builder(self):
        builder = ScenarioBuilder(tiny_config())
        assert builder.with_seed(5) is builder
        assert builder.with_assets({"ETH": (1.0, 0.5)}) is builder
        assert builder.with_population(liquidators=3) is builder
        assert builder.without_incidents() is builder

    def test_default_feed_matches_legacy_build_price_feed(self):
        config = ScenarioConfig.small(seed=9)
        new = ScenarioBuilder(config).build_feed()
        legacy = build_price_feed(config)
        for symbol in ("ETH", "WBTC", "DAI"):
            np.testing.assert_allclose(new.series[symbol], legacy.series[symbol])

    def test_without_incidents_schedules_nothing_and_smooths_the_feed(self):
        config = ScenarioConfig.small(seed=9)
        builder = ScenarioBuilder(config).without_incidents()
        feed = builder.build_feed()
        crash_block = config.incidents.march_2020_block
        before = feed.price("ETH", crash_block - 5 * config.feed_blocks_per_step)
        after = feed.price("ETH", crash_block + 5 * config.feed_blocks_per_step)
        # Without the scheduled crash the move across the window is pure diffusion.
        assert after > before * 0.75

    def test_with_protocols_restricts_the_universe(self):
        engine = ScenarioBuilder(tiny_config()).with_protocols("Compound", "MakerDAO").build()
        assert [protocol.name for protocol in engine.protocols] == ["Compound", "MakerDAO"]
        assert engine.protocol("Compound").name == "Compound"
        with pytest.raises(KeyError):
            engine.protocol("Aave V1")

    def test_unknown_protocol_name_raises(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            ScenarioBuilder(tiny_config()).with_protocols("Uniswap").build()

    def test_shock_targeting_unknown_asset_raises(self):
        builder = ScenarioBuilder(tiny_config()).with_incidents(
            PriceCrash(name="btc-crash", block=9_710_000, drop=0.3, symbols=("BTC",))
        )
        with pytest.raises(ValueError, match="unknown asset 'BTC'"):
            builder.build_feed()

    def test_with_population_overrides_single_fields(self):
        builder = ScenarioBuilder(tiny_config()).with_population(borrowers_per_platform=2)
        assert builder.config.population.borrowers_per_platform == 2
        assert builder.config.population.keepers == 5  # untouched small-preset value

    def test_extra_agents_and_events_are_wired(self):
        seen = []

        def extra_agents(ctx, engine):
            seen.append(len(engine.agents))

        builder = (
            ScenarioBuilder(tiny_config())
            .schedule(9_700_001, "custom-event", lambda eng: None)
            .add_agents(extra_agents)
        )
        engine = builder.build()
        assert seen and seen[0] > 0
        assert any(event.name == "custom-event" for event in engine.scheduled_events)


class TestLegacyEquivalence:
    def test_builder_reproduces_legacy_small_run(self, small_result, small_records):
        """Seed-pinned equivalence: the builder path must replay the legacy
        `build_scenario(ScenarioConfig.small())` world exactly."""
        engine = ScenarioBuilder(ScenarioConfig.small(seed=11)).build()
        result = engine.run()
        assert len(extract_liquidations(result)) == len(small_records)
        assert result.final_block == small_result.final_block
        assert len(result.chain.events) == len(small_result.chain.events)

    def test_registry_small_is_the_legacy_small_preset(self):
        builder = scenarios.get("small").builder(seed=11)
        assert builder.config == ScenarioConfig.small(seed=11)


class TestRegistry:
    def test_library_ships_the_documented_scenarios(self):
        expected = {
            "small",
            "paper-medium",
            "paper-full",
            "march-2020-only",
            "no-incidents-bull",
            "double-crash-stress",
            "stablecoin-depeg",
            "oracle-attack",
        }
        assert expected <= set(scenarios.names())

    def test_unknown_name_raises_with_known_names_listed(self):
        with pytest.raises(UnknownScenarioError, match="march-2020-only"):
            scenarios.get("definitely-not-a-scenario")

    def test_duplicate_registration_is_an_error(self):
        @register_scenario("tmp-duplicate-check")
        def factory(seed=None):
            return ScenarioBuilder(tiny_config())

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("tmp-duplicate-check")(factory)
        finally:
            scenarios.unregister("tmp-duplicate-check")

    def test_march_2020_only_has_exactly_one_incident(self):
        builder = scenarios.get("march-2020-only").builder(seed=3)
        assert len(builder.incidents) == 1
        assert builder.incidents[0].name == "march-2020-crash"

    def test_definition_build_returns_engine_with_seed_applied(self):
        definition = scenarios.get("march-2020-only")
        engine = definition.builder(seed=123).with_window(end_block=9_710_000).build()
        assert engine.config.seed == 123


class TestScheduledEventRobustness:
    def test_event_before_start_block_fires_on_first_step(self, tiny_engine):
        fired = []
        mark = len(tiny_engine.scheduled_events)
        tiny_engine.schedule(0, "pre-genesis", lambda eng: fired.append("pre-genesis"))
        tiny_engine._fire_scheduled_events()
        assert fired == ["pre-genesis"]
        del tiny_engine.scheduled_events[mark:]

    def test_action_may_schedule_further_due_events_mid_iteration(self, tiny_engine):
        fired = []
        mark = len(tiny_engine.scheduled_events)

        def chain_reaction(eng):
            fired.append("first")
            eng.schedule(0, "second", lambda e: fired.append("second"))

        tiny_engine.schedule(0, "first", chain_reaction)
        tiny_engine._fire_scheduled_events()
        assert fired == ["first", "second"]
        assert all(event.fired for event in tiny_engine.scheduled_events[mark:])
        del tiny_engine.scheduled_events[mark:]

    def test_events_fire_in_block_order_not_registration_order(self, tiny_engine):
        fired = []
        mark = len(tiny_engine.scheduled_events)
        tiny_engine.schedule(100, "later", lambda eng: fired.append("later"))
        tiny_engine.schedule(50, "earlier", lambda eng: fired.append("earlier"))
        tiny_engine._fire_scheduled_events()
        assert fired == ["earlier", "later"]
        del tiny_engine.scheduled_events[mark:]


class TestEngineProtocolLookup:
    def test_lookup_sees_protocols_appended_after_construction(self, tiny_engine):
        assert tiny_engine.protocol("Compound").name == "Compound"  # warm the cache

        class Dummy:
            name = "Dummy"

        tiny_engine.protocols.append(Dummy())
        try:
            assert tiny_engine.protocol("Dummy").name == "Dummy"
        finally:
            tiny_engine.protocols.pop()

    def test_unknown_protocol_raises_keyerror(self, tiny_engine):
        with pytest.raises(KeyError, match="Nonexistent"):
            tiny_engine.protocol("Nonexistent")

    def test_lookup_sees_in_place_replacement_after_invalidation(self, tiny_engine):
        original = tiny_engine.protocol("Compound")
        index = tiny_engine.protocols.index(original)

        class Impostor:
            name = "Compound"

        tiny_engine.protocols[index] = Impostor()
        tiny_engine.invalidate_protocol_cache()
        try:
            assert tiny_engine.protocol("Compound") is tiny_engine.protocols[index]
        finally:
            tiny_engine.protocols[index] = original
            tiny_engine.invalidate_protocol_cache()


class TestExperimentSpecs:
    def test_run_one_matches_run_all(self, small_result):
        outputs = run_all(small_result)
        single = run_one(small_result, "table1")
        assert single.report == outputs["table1"].report
        assert set(outputs) == set(EXPERIMENT_IDS)

    def test_run_one_unknown_id_raises(self, small_result):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_one(small_result, "table99")


class TestCli:
    def test_list_prints_every_scenario(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("march-2020-only", "stablecoin-depeg", "oracle-attack"):
            assert name in out

    def test_reports_lists_ids(self, capsys):
        from repro.cli import main

        assert main(["reports"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_report_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run", "--scenario", "small", "--report", "table99"]) == 2
        assert "unknown report" in capsys.readouterr().err

    def test_typoed_report_rejected_even_alongside_all(self, capsys):
        from repro.cli import main

        assert main(["run", "--scenario", "small", "--report", "all", "--report", "tabel1"]) == 2
        assert "tabel1" in capsys.readouterr().err

    def test_run_renders_table1_end_to_end(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--scenario",
                "march-2020-only",
                "--seed",
                "3",
                "--report",
                "table1",
                "--end-block",
                "9900000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Table 1" in captured.out

    def test_run_writes_output_file(self, capsys, tmp_path):
        from repro.cli import main

        target = tmp_path / "report.txt"
        code = main(
            [
                "run",
                "--scenario",
                "no-incidents-bull",
                "--seed",
                "5",
                "--report",
                "fig4",
                "--end-block",
                "9760000",
                "--output",
                str(target),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert "Figure 4" in target.read_text()
