"""Unit tests for the token substrate."""

import pytest

from repro.chain.types import make_address
from repro.tokens.registry import STABLECOIN_SYMBOLS, TokenRegistry, UnknownToken, default_registry, inception_prices
from repro.tokens.token import InsufficientBalance, Token

ALICE = make_address("alice")
BOB = make_address("bob")


class TestToken:
    def test_mint_credits_balance_and_supply(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 100.0)
        assert token.balance_of(ALICE) == pytest.approx(100.0)
        assert token.total_supply == pytest.approx(100.0)

    def test_transfer_moves_balance(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 100.0)
        token.transfer(ALICE, BOB, 40.0)
        assert token.balance_of(ALICE) == pytest.approx(60.0)
        assert token.balance_of(BOB) == pytest.approx(40.0)

    def test_transfer_conserves_supply(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 100.0)
        token.transfer(ALICE, BOB, 40.0)
        assert token.total_supply == pytest.approx(100.0)

    def test_overdraft_rejected(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 10.0)
        with pytest.raises(InsufficientBalance):
            token.transfer(ALICE, BOB, 11.0)

    def test_burn_reduces_supply(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 100.0)
        token.burn(ALICE, 30.0)
        assert token.total_supply == pytest.approx(70.0)

    def test_burn_more_than_balance_rejected(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 10.0)
        with pytest.raises(InsufficientBalance):
            token.burn(ALICE, 20.0)

    def test_negative_amounts_rejected(self):
        token = Token(symbol="DAI")
        with pytest.raises(ValueError):
            token.mint(ALICE, -1.0)
        with pytest.raises(ValueError):
            token.transfer(ALICE, BOB, -1.0)

    def test_transfer_all(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 55.0)
        moved = token.transfer_all(ALICE, BOB)
        assert moved == pytest.approx(55.0)
        assert token.balance_of(ALICE) == pytest.approx(0.0)

    def test_holders_lists_positive_balances(self):
        token = Token(symbol="DAI")
        token.mint(ALICE, 5.0)
        assert ALICE in token.holders()
        assert BOB not in token.holders()

    def test_equality_by_symbol(self):
        assert Token(symbol="DAI") == Token(symbol="DAI", name="Dai Stablecoin")


class TestRegistry:
    def test_default_registry_contains_major_assets(self):
        registry = default_registry()
        for symbol in ("ETH", "WBTC", "DAI", "USDC", "USDT"):
            assert symbol in registry

    def test_stablecoins_flagged(self):
        registry = default_registry()
        assert registry.get("DAI").is_stablecoin
        assert not registry.get("ETH").is_stablecoin
        assert {token.symbol for token in registry.stablecoins()} <= STABLECOIN_SYMBOLS

    def test_get_unknown_symbol_raises(self):
        registry = TokenRegistry()
        with pytest.raises(UnknownToken):
            registry.get("NOPE")

    def test_ensure_creates_missing_token(self):
        registry = TokenRegistry()
        token = registry.ensure("NEW")
        assert token.symbol == "NEW"
        assert registry.ensure("NEW") is token

    def test_register_is_idempotent(self):
        registry = TokenRegistry()
        first = registry.register(Token(symbol="ABC"))
        second = registry.register(Token(symbol="ABC"))
        assert first is second

    def test_case_insensitive_lookup(self):
        registry = default_registry()
        assert registry.get("eth") is registry.get("ETH")

    def test_inception_prices_cover_default_assets(self):
        prices = inception_prices()
        registry = default_registry()
        for symbol in registry.symbols():
            assert symbol in prices
            assert prices[symbol] > 0
