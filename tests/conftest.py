"""Shared fixtures for the test suite.

The expensive fixture is ``small_result``: a full (reduced-scale) scenario
run shared across every integration/analytics test via session scoping, so
the suite stays fast while still exercising the end-to-end pipeline.
"""

from __future__ import annotations

import pytest

from repro.analytics.records import extract_liquidations
from repro.chain.chain import Blockchain, ChainConfig
from repro.oracle.chainlink import OracleConfig, PriceOracle
from repro.oracle.feed import PriceFeed
from repro.simulation.config import ScenarioConfig
from repro.simulation.scenarios import build_scenario
from repro.tokens.registry import default_registry


@pytest.fixture(scope="session")
def small_result():
    """A completed small-scenario simulation (three months around March 2020).

    Deliberately built through the legacy ``build_scenario`` entry point so
    that it doubles as the reference world for the builder-equivalence test
    in ``test_scenarios_api.py``.
    """
    engine = build_scenario(ScenarioConfig.small(seed=11))
    return engine.run()


@pytest.fixture(scope="session")
def small_records(small_result):
    """Normalised liquidation records extracted from the small scenario."""
    return extract_liquidations(small_result)


@pytest.fixture()
def registry():
    """A fresh default token registry."""
    return default_registry()


@pytest.fixture()
def chain():
    """A fresh single-block-stride chain."""
    return Blockchain(ChainConfig(inception_block=1_000, inception_timestamp=1_600_000_000))


@pytest.fixture()
def flat_feed():
    """A constant price feed covering every default asset (ETH at 2,000 USD)."""
    import numpy as np

    from repro.tokens.registry import inception_prices

    n = 50
    series = {symbol: np.full(n, price) for symbol, price in inception_prices().items()}
    series["ETH"] = np.full(n, 2_000.0)
    series["WBTC"] = np.full(n, 30_000.0)
    return PriceFeed(start_block=1_000, blocks_per_step=10, series=series)


@pytest.fixture()
def oracle(chain, flat_feed):
    """An oracle over the flat feed, posted at the chain head."""
    oracle = PriceOracle(chain, flat_feed, OracleConfig(name="test-oracle"))
    oracle.update_from_feed()
    return oracle
