"""Tests for the experiment harnesses (one per table/figure)."""

import pytest

from repro.experiments import (
    case_study,
    close_factor_ablation,
    configuration_sweep,
    fig4_accumulative,
    fig5_monthly_profit,
    fig6_gas_prices,
    fig7_auctions,
    fig8_sensitivity,
    fig9_profit_volume,
    mitigation,
    run_all,
    render_all,
    stablecoin,
    table1_overview,
    table2_bad_debt,
    table3_unprofitable,
    table4_flash_loans,
    table7_price_movement,
    table8_monthly,
)
from repro.experiments.runner import EXPERIMENT_IDS


class TestCaseStudy:
    """Tables 5 and 6 are deterministic; they should match the paper closely."""

    @pytest.fixture(scope="class")
    def data(self):
        return case_study.compute()

    def test_table5_position_status_matches_paper(self, data):
        assert data.before.total_collateral_usd == pytest.approx(135.07e6, rel=1e-3)
        assert data.before.borrowing_capacity_usd == pytest.approx(101.30e6, rel=1e-3)
        assert data.before.total_debt_usd == pytest.approx(101.18e6, rel=1e-3)
        assert data.after.total_collateral_usd == pytest.approx(136.73e6, rel=1e-3)
        assert data.after.borrowing_capacity_usd == pytest.approx(102.55e6, rel=1e-3)
        assert data.after.total_debt_usd == pytest.approx(102.61e6, rel=1e-3)

    def test_position_becomes_liquidatable_only_after_oracle_update(self, data):
        assert data.before.health_factor > 1.0
        assert data.after.health_factor < 1.0

    def test_strategy_ordering(self, data):
        profits = {execution.name: execution.profit_usd for execution in data.executions}
        assert profits["optimal"] > profits["up-to-close-factor"] > profits["original"]

    def test_optimal_extra_profit_close_to_paper(self, data):
        # Paper: the optimal strategy adds 53.96K USD over the original liquidation.
        assert data.optimal_extra_profit_usd == pytest.approx(53_960.0, rel=0.05)

    def test_optimal_first_liquidation_is_small(self, data):
        optimal = data.executions[2]
        assert optimal.repays_usd[0] < 0.01 * optimal.repays_usd[1]

    def test_mitigation_threshold_matches_paper(self, data):
        # Paper: a mining liquidator needs > 99.68 % mining power.
        assert data.mitigation_alpha_threshold == pytest.approx(0.9968, abs=0.002)

    def test_render_mentions_both_tables(self, data):
        text = case_study.render(data)
        assert "Table 5" in text and "Table 6" in text


class TestAnalyticExperiments:
    def test_mitigation_thresholds_increase_toward_one(self):
        data = mitigation.compute()
        thresholds = [data.thresholds_by_cr[cr] for cr in sorted(data.thresholds_by_cr)]
        assert all(value >= 0.0 for value in thresholds)
        assert max(thresholds) > 0.5
        assert data.case_study.alpha_threshold > 0.9
        assert "mining power" in mitigation.render(data)

    def test_configuration_sweep_production_markets_reasonable(self):
        data = configuration_sweep.compute()
        assert all(data.production_configs.values())
        assert 0.0 < data.reasonable_share < 1.0
        assert "Appendix C" in configuration_sweep.render(data)

    def test_close_factor_ablation_shows_over_liquidation(self):
        data = close_factor_ablation.compute()
        by_cf = {point.close_factor: point for point in data.points}
        assert by_cf[0.5].repay_allowed_usd > by_cf[0.5].repay_needed_usd
        assert by_cf[1.0].excess_loss_usd > by_cf[0.25].excess_loss_usd
        assert "close factor" in close_factor_ablation.render(data).lower()


class TestScenarioExperiments:
    def test_record_based_experiments_render(self, small_records):
        for module in (fig4_accumulative, table1_overview, fig5_monthly_profit, table8_monthly):
            data = module.compute(small_records)
            text = module.render(data)
            assert isinstance(text, str) and len(text) > 50

    def test_result_based_experiments_render(self, small_result):
        for module in (fig6_gas_prices, fig7_auctions, table2_bad_debt, table3_unprofitable, table4_flash_loans, fig8_sensitivity, stablecoin):
            data = module.compute(small_result)
            text = module.render(data)
            assert isinstance(text, str) and len(text) > 30

    def test_joint_experiments_render(self, small_result, small_records):
        for module in (fig9_profit_volume, table7_price_movement):
            data = module.compute(small_result, small_records)
            assert isinstance(module.render(data), str)

    def test_run_all_covers_every_experiment(self, small_result):
        outputs = run_all(small_result)
        assert set(outputs) == set(EXPERIMENT_IDS)
        report = render_all(outputs)
        for fragment in ("Table 1", "Figure 4", "Figure 8", "Table 6", "Appendix C"):
            assert fragment in report
