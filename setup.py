"""Shim for environments whose setuptools cannot do PEP 660 editable installs.

All metadata lives in ``pyproject.toml`` (setuptools >= 61 reads it from
here too).  On toolchains missing the ``wheel`` package, use::

    pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
