"""Quickstart: run a reduced-scale scenario and print the headline measurements.

This is the fastest way to see the whole pipeline — scenario simulation,
event crawling, and the Table 1 / Figure 4 style aggregates — in one script::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analytics import (
    extract_liquidations,
    gas_report,
    profit_report,
    total_liquidated_collateral_usd,
    usd,
)
from repro.experiments import table1_overview
from repro.simulation import ScenarioConfig, run_scenario


def main() -> None:
    # A three-month window around the March 2020 crash; ScenarioConfig.paper()
    # covers the full April 2019 – April 2021 study window.
    config = ScenarioConfig.small(seed=7)
    print(f"Simulating blocks {config.start_block:,} – {config.end_block:,} …")
    result = run_scenario(config)

    records = extract_liquidations(result)
    print(f"\nLiquidations observed: {len(records)}")
    print(f"Collateral sold through liquidation: {usd(total_liquidated_collateral_usd(records))}")

    report = profit_report(records)
    print("\n" + table1_overview.render(report))

    gas = gas_report(result)
    print(
        f"\nShare of liquidations paying an above-average gas price: "
        f"{gas.share_above_average:.1%} (the paper reports 73.97%)"
    )


if __name__ == "__main__":
    main()
