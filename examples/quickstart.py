"""Quickstart: run scenarios through the composable scenario API.

This is the fastest way to see the whole pipeline — scenario simulation,
event crawling, and the Table 1 / Figure 4 style aggregates — in one script.
It runs the registered ``small`` scenario through the fluent
:class:`ScenarioBuilder`, then replays a non-default registry scenario
(``oracle-attack``) to show how a different world changes the measurements::

    python examples/quickstart.py

The same worlds are reachable without any code via the CLI::

    python -m repro run --scenario small --report table1
    python -m repro run --scenario oracle-attack --report table1
"""

from __future__ import annotations

from repro import scenarios
from repro.analytics import (
    extract_liquidations,
    gas_report,
    profit_report,
    total_liquidated_collateral_usd,
    usd,
)
from repro.experiments import table1_overview
from repro.scenarios import ScenarioBuilder
from repro.simulation import ScenarioConfig


def main() -> None:
    # --- the default world, built fluently --------------------------------
    # A three-month window around the March 2020 crash; ScenarioConfig.paper()
    # covers the full April 2019 – April 2021 study window.  Any layer can be
    # overridden before .build(): assets, incidents, population, protocols.
    config = ScenarioConfig.small(seed=7)
    print(f"Simulating blocks {config.start_block:,} – {config.end_block:,} …")
    result = ScenarioBuilder(config).build().run()

    records = extract_liquidations(result)
    print(f"\nLiquidations observed: {len(records)}")
    print(f"Collateral sold through liquidation: {usd(total_liquidated_collateral_usd(records))}")

    report = profit_report(records)
    print("\n" + table1_overview.render(report))

    gas = gas_report(result)
    print(
        f"\nShare of liquidations paying an above-average gas price: "
        f"{gas.share_above_average:.1%} (the paper reports 73.97%)"
    )

    # --- a non-default registry scenario ----------------------------------
    # The registry ships named worlds beyond the paper presets; here the
    # shared oracle is manipulated to report ETH 35 % low for ~5,000 blocks
    # in an otherwise calm market.  The fair baseline is the same world with
    # the attack removed — the market prices are identical, so every extra
    # liquidation is caused by the manipulated oracle alone.
    print("\nReplaying the 'oracle-attack' scenario …")
    attack_builder = scenarios.get("oracle-attack").builder(seed=7)
    end_block = attack_builder.incidents[0].block + 40_000
    n_attack = len(extract_liquidations(attack_builder.with_window(end_block=end_block).run()))
    calm_builder = scenarios.get("oracle-attack").builder(seed=7).without_incidents()
    n_calm = len(extract_liquidations(calm_builder.with_window(end_block=end_block).run()))
    print(
        f"Liquidations by block {end_block:,}: {n_attack} under the attack "
        f"vs {n_calm} in the same world without it ({n_attack - n_calm:+d} from the oracle alone)"
    )


if __name__ == "__main__":
    main()
