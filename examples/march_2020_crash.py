"""Scenario study: the 13 March 2020 crash and the MakerDAO keeper failure.

Reproduces, at reduced scale, the dynamics behind the paper's Figure 5
outlier and Figure 7 parameter change: a 43 % ETH crash congests the network,
keeper bids priced off stale gas estimates stop landing, the few capable
keepers win auctions at low-ball bids, and MakerDAO subsequently lengthens
its auction bid duration.

    python examples/march_2020_crash.py
"""

from __future__ import annotations

from repro import scenarios
from repro.analytics import auction_report, extract_liquidations, monthly_profit_by_platform, usd


def main() -> None:
    # The registered "march-2020-only" scenario declares the crash (and its
    # congestion) as a single PriceCrash incident on the three-month window;
    # composing MakerDAO's historical parameter change back in is one line.
    builder = scenarios.get("march-2020-only").builder(seed=13)
    crash_block = builder.incidents[0].block
    builder.add_incidents(
        scenarios.AuctionReconfig(name="makerdao-auction-reconfiguration", block=crash_block + 85_000)
    )
    print(f"Simulating a window containing the crash at block {crash_block:,} …")
    result = builder.run()

    # ETH price around the crash, from the market feed.
    feed = result.engine.feed
    before = feed.price("ETH", crash_block - 2_000)
    after = feed.price("ETH", crash_block + 2_000)
    print(f"\nETH price across the crash: {before:,.0f} → {after:,.0f} USD ({after / before - 1.0:+.1%})")

    # Monthly MakerDAO liquidation profit: the crash month dominates.
    records = extract_liquidations(result)
    maker_monthly = monthly_profit_by_platform(records).get("MakerDAO", {})
    print("\nMakerDAO monthly liquidation profit:")
    for month in sorted(maker_monthly):
        print(f"  {month}: {usd(maker_monthly[month])}")

    # Auction dynamics: durations and the post-incident parameter change.
    auctions = auction_report(result)
    print(f"\nSettled auctions: {auctions.settled_auctions}")
    print(f"Mean bids per auction: {auctions.mean_bids_per_auction:.2f}")
    print(f"Mean auction duration: {auctions.mean_duration_hours:.1f} hours")
    print("Configured auction parameters over time:")
    for change in auctions.config_changes:
        print(
            f"  block {change.block_number:,}: auction length {change.auction_length_hours:.1f} h, "
            f"bid duration {change.bid_duration_hours:.1f} h"
        )


if __name__ == "__main__":
    main()
