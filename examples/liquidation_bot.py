"""Build a liquidation bot against the public protocol API.

Demonstrates the workflow a fixed spread liquidator follows (Section 3.1):
monitor positions, quote the profit of a liquidation call, check it against
the transaction fee, and execute — optionally funding the repayment with a
flash loan.  Everything runs on a hand-built mini world rather than the full
scenario, so the script finishes in well under a second.

    python examples/liquidation_bot.py
"""

from __future__ import annotations

import numpy as np

from repro.chain import Blockchain, ChainConfig, LIQUIDATION_GAS, make_address
from repro.flashloan import FlashLoanPool
from repro.oracle import OracleConfig, PriceFeed, PriceOracle
from repro.protocols import CompoundProtocol
from repro.tokens import default_registry


def main() -> None:
    # --- build a tiny world: chain, oracle, Compound pool -----------------
    registry = default_registry()
    chain = Blockchain(ChainConfig(inception_block=12_000_000))
    feed = PriceFeed(
        start_block=12_000_000,
        blocks_per_step=1,
        series={"ETH": np.array([2_000.0]), "DAI": np.array([1.0]), "USDC": np.array([1.0])},
    )
    oracle = PriceOracle(chain, feed, OracleConfig(name="compound-open-oracle"))
    oracle.update_from_feed()
    compound = CompoundProtocol(chain, oracle, registry, markets={"ETH": 0.75, "DAI": 0.75, "USDC": 0.75})

    # Seed pool liquidity and open a borrower position.
    lender, borrower, bot = make_address("lender"), make_address("borrower"), make_address("bot")
    registry.get("DAI").mint(lender, 1_000_000.0)
    compound.supply_liquidity(lender, "DAI", 1_000_000.0)
    registry.get("ETH").mint(borrower, 10.0)
    compound.deposit(borrower, "ETH", 10.0)
    compound.borrow(borrower, "DAI", 14_500.0)
    print(f"Borrower health factor at 2,000 USD/ETH: {compound.health_factor(borrower):.3f}")

    # --- the price drops and the bot spots an opportunity -----------------
    oracle.post_price("ETH", 1_850.0)
    print(f"Borrower health factor at 1,850 USD/ETH: {compound.health_factor(borrower):.3f}")
    for position in compound.liquidatable_positions():
        debt_symbol, collateral_symbol = compound.best_liquidation_pair(position.owner)
        repay = compound.max_repay_amount(position.owner, debt_symbol)
        quote = compound.quote_liquidation_call(position.owner, debt_symbol, collateral_symbol, repay)
        fee_usd = chain.gas_market.base_gas_price_wei * LIQUIDATION_GAS / 1e18 * oracle.price("ETH")
        print(
            f"\nOpportunity: repay {quote.repay_amount:,.0f} {debt_symbol} "
            f"→ seize {quote.collateral_amount:.4f} {collateral_symbol} "
            f"(profit {quote.profit_usd:,.0f} USD, tx fee ≈ {fee_usd:.2f} USD)"
        )
        if quote.profit_usd <= fee_usd:
            print("  not profitable, skipping")
            continue

        # Fund the repayment with a flash loan, liquidate, repay the loan.
        dai = registry.get("DAI")
        pool = FlashLoanPool(platform="dYdX", token=dai, fee_rate=0.0, chain=chain)
        dai.mint(lender, 100_000.0)
        pool.fund(lender, 100_000.0)

        def callback(amount: float, fee: float) -> None:
            result = compound.liquidation_call(
                bot, position.owner, debt_symbol, collateral_symbol, repay, used_flash_loan=True
            )
            # Sell just enough seized ETH at the oracle price to repay the loan.
            eth = registry.get(collateral_symbol)
            needed_eth = (amount + fee) / oracle.price(collateral_symbol)
            eth.burn(bot, needed_eth)
            dai.mint(bot, amount + fee)
            print(f"  executed: received {result.quote.collateral_amount:.4f} {collateral_symbol}")

        pool.flash_loan(bot, repay, callback, purpose="liquidation:Compound")
        print(f"  bot ETH balance after liquidation: {registry.get('ETH').balance_of(bot):.4f}")
        print(f"  borrower health factor after liquidation: {compound.health_factor(position.owner):.3f}")


if __name__ == "__main__":
    main()
