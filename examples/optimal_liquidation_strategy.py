"""The optimal fixed spread liquidation strategy on the paper's case study.

Replays the Compound liquidation of Section 5.2.2 (Tables 5 and 6): the
position state before/after the oracle update, the three strategies
(original, up-to-close-factor, optimal), and the mining-power threshold of
the one-liquidation-per-block mitigation.

    python examples/optimal_liquidation_strategy.py
"""

from __future__ import annotations

from repro.core import LiquidationParams, SimplePosition, compare_strategies, profit_increase_rate
from repro.experiments import case_study, mitigation


def main() -> None:
    data = case_study.compute()
    print(case_study.render(data))

    print("\n" + mitigation.render(mitigation.compute()))

    # The closed-form Equation 9 gain for a generic position: the lower the
    # collateralization ratio, the more the optimal strategy adds.
    params = LiquidationParams(liquidation_threshold=0.75, liquidation_spread=0.08, close_factor=0.5)
    print("Relative profit increase of the optimal strategy (Equation 9):")
    for cr in (1.05, 1.15, 1.25, 1.32):
        position = SimplePosition(collateral_usd=cr * 1_000_000.0, debt_usd=1_000_000.0)
        if not position.is_liquidatable(params.liquidation_threshold):
            continue
        outcomes = compare_strategies(position, params)
        print(
            f"  CR = {cr:.2f}: +{profit_increase_rate(position, params):.2%} "
            f"({outcomes['up-to-close-factor'].profit_usd:,.0f} → {outcomes['optimal'].profit_usd:,.0f} USD)"
        )


if __name__ == "__main__":
    main()
